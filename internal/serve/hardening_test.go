package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/obs"
)

// panicSeed is the sentinel the tests' PanicTrigger panics on.
const panicSeed = 0xdead

func panicServer(opts Options) *Server {
	opts.PanicTrigger = func(seed uint64) {
		if seed == panicSeed {
			panic("deliberate test panic")
		}
	}
	return NewServer(opts)
}

// TestPanicIsolation pins the tentpole contract: a panic on the request path
// yields a structured 500 with code "panic", increments serve.panics_total,
// emits a panic_recovered event, and the worker survives — the server keeps
// serving byte-identical cached responses afterwards.
func TestPanicIsolation(t *testing.T) {
	collector := &obs.Collector{}
	s := panicServer(Options{Workers: 1, Observer: collector})
	defer drain(t, s)

	// Healthy request first, so there is a cache entry to re-serve later.
	good := iterateBody("min-min", "det", 1)
	first := post(s, "/v1/iterate", good)
	if first.Code != http.StatusOK {
		t.Fatalf("healthy request: status %d: %s", first.Code, first.Body.String())
	}

	rec := post(s, "/v1/iterate", iterateBody("min-min", "det", panicSeed))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != CodePanic {
		t.Fatalf("panicking request envelope: %s", rec.Body.String())
	}
	// The client-facing message is fixed: panic values are nondeterministic
	// and must never leak into response bodies.
	if er.Error.Message != "internal panic (recovered)" {
		t.Fatalf("panic 500 message %q leaks detail", er.Error.Message)
	}
	if got := counterValue(t, s, "serve.panics_total"); got != 1 {
		t.Fatalf("serve.panics_total = %d, want 1", got)
	}

	// The single worker survived: the cached body is re-served
	// byte-identically and fresh computations still run.
	hit := post(s, "/v1/iterate", good)
	if hit.Code != http.StatusOK || hit.Header().Get("X-Schedd-Cache") != "hit" {
		t.Fatalf("post-panic cached request: status %d cache %q", hit.Code, hit.Header().Get("X-Schedd-Cache"))
	}
	if !bytes.Equal(hit.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("post-panic cache hit differs from pre-panic body")
	}
	if rec := post(s, "/v1/iterate", iterateBody("max-min", "det", 2)); rec.Code != http.StatusOK {
		t.Fatalf("post-panic fresh request: status %d: %s", rec.Code, rec.Body.String())
	}

	// A second identical panicking request panics again: recovered results
	// are never cached.
	if rec := post(s, "/v1/iterate", iterateBody("min-min", "det", panicSeed)); rec.Code != http.StatusInternalServerError {
		t.Fatalf("repeat panicking request: status %d, want 500", rec.Code)
	}
	if got := counterValue(t, s, "serve.panics_total"); got != 2 {
		t.Fatalf("serve.panics_total = %d, want 2 (panic responses must not be cached)", got)
	}

	// Observability: a panic_recovered event with the panic value, and a
	// request_done access-log record with status 500 for the same request.
	var panics []obs.PanicRecovered
	var done500 int
	for _, e := range collector.Events() {
		switch ev := e.(type) {
		case obs.PanicRecovered:
			panics = append(panics, ev)
		case obs.RequestDone:
			if ev.Status == http.StatusInternalServerError {
				done500++
			}
		}
	}
	if len(panics) != 2 {
		t.Fatalf("%d panic_recovered events, want 2", len(panics))
	}
	if panics[0].Endpoint != "/v1/iterate" || !strings.Contains(panics[0].Value, "deliberate test panic") {
		t.Fatalf("panic_recovered event %+v", panics[0])
	}
	if panics[0].Stack == "" {
		t.Fatal("panic_recovered event missing stack")
	}
	if done500 != 2 {
		t.Fatalf("%d request_done events with status 500, want 2", done500)
	}
}

// TestResponseConservation pins the chaos harness's metrics-conservation
// invariant at the unit level: after a mix of outcomes (200, 405, 422, 500
// panic), serve.requests_total equals the sum of the per-outcome counters.
func TestResponseConservation(t *testing.T) {
	s := panicServer(Options{Workers: 1})
	defer drain(t, s)

	post(s, "/v1/iterate", iterateBody("min-min", "det", 1))         // 200 miss
	post(s, "/v1/iterate", iterateBody("min-min", "det", 1))         // 200 hit
	do(s, http.MethodGet, "/v1/map", "")                             // 405
	post(s, "/v1/map", `{"etc":[[0]],"heuristic":"met"}`)            // 422
	post(s, "/v1/iterate", iterateBody("min-min", "det", panicSeed)) // 500
	post(s, "/v1/map", "{")                                          // 400

	total := counterValue(t, s, "serve.requests_total")
	sum := counterValue(t, s, "serve.responses_2xx") +
		counterValue(t, s, "serve.responses_4xx") +
		counterValue(t, s, "serve.responses_5xx")
	if total != 6 || sum != total {
		t.Fatalf("requests_total=%d, 2xx+4xx+5xx=%d, want equal at 6", total, sum)
	}
	if got := counterValue(t, s, "serve.responses_2xx"); got != 2 {
		t.Fatalf("responses_2xx = %d, want 2", got)
	}
	if got := counterValue(t, s, "serve.responses_4xx"); got != 3 {
		t.Fatalf("responses_4xx = %d, want 3", got)
	}
	if got := counterValue(t, s, "serve.responses_5xx"); got != 1 {
		t.Fatalf("responses_5xx = %d, want 1", got)
	}
}

// TestRequestPathPanicSourcesUnreachable is the boundary audit for the
// panic sites reachable from library code: etc.MustNew (internal/etc),
// sched.MustInstance (internal/sched) and tiebreak.Choose's empty-candidate
// guard. The request path never calls the Must* constructors — parseRequest
// uses the error-returning forms behind validateRequest — and tiebreak
// policies only ever see candidate sets derived from a validated non-empty
// instance. This test drives every boundary input through the HTTP surface
// and asserts no 5xx escapes: degenerate shapes are 4xx envelopes, and
// every registered heuristic completes on the smallest legal instances.
func TestRequestPathPanicSourcesUnreachable(t *testing.T) {
	s := NewServer(Options{})
	defer drain(t, s)

	degenerate := []struct {
		name, body string
		want       int
	}{
		{"no tasks", `{"etc":[],"heuristic":"min-min"}`, http.StatusUnprocessableEntity},
		{"no machines", `{"etc":[[]],"heuristic":"min-min"}`, http.StatusUnprocessableEntity},
		{"all rows empty", `{"etc":[[],[]],"heuristic":"min-min"}`, http.StatusUnprocessableEntity},
		{"zero cell", `{"etc":[[0]],"heuristic":"min-min"}`, http.StatusUnprocessableEntity},
		{"negative cell", `{"etc":[[-5]],"heuristic":"min-min"}`, http.StatusUnprocessableEntity},
		// JSON has no NaN/Inf literals; an out-of-range number fails at
		// decode (400), so non-finite cells cannot reach the matrix at all.
		{"overflowing cell", `{"etc":[[1e999]],"heuristic":"min-min"}`, http.StatusBadRequest},
		{"nan literal", `{"etc":[[NaN]],"heuristic":"min-min"}`, http.StatusBadRequest},
		{"ready too long", `{"etc":[[1]],"heuristic":"min-min","ready":[0,0,0]}`, http.StatusUnprocessableEntity},
		{"ready negative", `{"etc":[[1]],"heuristic":"min-min","ready":[-0.5]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range degenerate {
		t.Run(tc.name, func(t *testing.T) {
			for _, ep := range []string{"/v1/map", "/v1/iterate"} {
				rec := post(s, ep, tc.body)
				if rec.Code != tc.want {
					t.Fatalf("%s: status %d, want %d: %s", ep, rec.Code, tc.want, rec.Body.String())
				}
				if rec.Code >= 500 {
					t.Fatalf("%s: degenerate input reached a 5xx: %s", ep, rec.Body.String())
				}
			}
		})
	}

	// Every registered heuristic on the smallest legal instances: 1×1 and
	// 3×3 with heavy ties (all-equal cells maximize tiebreak.Choose calls,
	// so an empty-candidate panic would surface here if reachable).
	for _, name := range heuristics.Names() {
		for _, etcJSON := range []string{`[[1]]`, `[[2,2,2],[2,2,2],[2,2,2]]`} {
			for _, ties := range []string{"det", "random"} {
				body := fmt.Sprintf(`{"etc":%s,"heuristic":%q,"ties":%q,"seed":3}`, etcJSON, name, ties)
				for _, ep := range []string{"/v1/map", "/v1/iterate"} {
					rec := post(s, ep, body)
					if rec.Code != http.StatusOK {
						t.Fatalf("%s %s ties=%s etc=%s: status %d: %s",
							ep, name, ties, etcJSON, rec.Code, rec.Body.String())
					}
				}
			}
		}
	}
	if got := counterValue(t, s, "serve.panics_total"); got != 0 {
		t.Fatalf("serve.panics_total = %d, want 0", got)
	}
}
