package serve

import (
	"io"
	"net/http"
	"net/url"
	"testing"
)

// The serve-path allocation guards. The issue's target: an untraced,
// unobserved cache hit — the dominant request in a steady-state workload —
// must cost at most 8 allocations end to end (down from 71 before the
// raw-alias fast path), measured through the real mux with a reusable
// request and response writer so only the server's own costs count.

// replayBody is a resettable io.ReadCloser so one http.Request can be
// served repeatedly without per-iteration reader allocations.
type replayBody struct {
	data []byte
	off  int
}

func (r *replayBody) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *replayBody) Close() error { return nil }

func (r *replayBody) reset() { r.off = 0 }

// nullResponseWriter is the minimal reusable http.ResponseWriter: header
// map reused across requests, body bytes discarded (correctness of the
// bytes is pinned elsewhere; this type exists to measure the server, not
// the recorder).
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// newReplayRequest builds one reusable POST request for path with the given
// body; reset the returned replayBody before each serve.
func newReplayRequest(path, body string) (*http.Request, *replayBody) {
	rb := &replayBody{data: []byte(body)}
	return &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: path},
		Body:   rb,
		Host:   "test",
	}, rb
}

// TestCacheHitAllocs is the serve-side alloc guard: at most 8 allocs/op on
// the untraced raw-alias hit path.
func TestCacheHitAllocs(t *testing.T) {
	s := NewServer(Options{})
	defer drain(t, s)
	body := iterateBody("sufferage", "random", 42)
	if rec := post(s, "/v1/iterate", body); rec.Code != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", rec.Code, rec.Body.String())
	}

	req, rb := newReplayRequest("/v1/iterate", body)
	w := &nullResponseWriter{h: http.Header{}}
	h := s.Handler()
	// Prime the pooled scratch and the raw alias before measuring.
	rb.reset()
	h.ServeHTTP(w, req)

	got := testing.AllocsPerRun(200, func() {
		rb.reset()
		h.ServeHTTP(w, req)
	})
	if got > 8 {
		t.Fatalf("untraced cache hit costs %.1f allocs/op, budget 8", got)
	}
	if hits := counterValue(t, s, "serve.cache_hits"); hits == 0 {
		t.Fatal("guard measured a non-hit path")
	}
}
