package serve

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/obs"
)

// Serving-path benchmarks: the raw-alias hit path (BenchmarkServeCacheHit)
// and batch amortization (BenchmarkBatchServe). Both drive the real mux
// with reusable requests/writers so the numbers isolate server cost;
// scripts/bench.sh records them in BENCH_1.json and scripts/benchdiff.sh
// gates regressions on both ns/op and allocs/op.

// discardObserver swallows spans so the traced benchmark measures trace
// construction, not sink accumulation.
type discardObserver struct{}

func (discardObserver) Observe(obs.Event) {}

func benchDrain(b *testing.B, s *Server) {
	b.Helper()
	if err := s.Drain(context.Background()); err != nil {
		b.Fatalf("Drain: %v", err)
	}
}

// BenchmarkServeCacheHit measures one singleton request served from the
// raw-alias index, untraced (the alloc-guarded fast path) and traced with a
// discarding sink (the observability overhead).
func BenchmarkServeCacheHit(b *testing.B) {
	body := iterateBody("sufferage", "random", 42)
	run := func(b *testing.B, opts Options) {
		s := NewServer(opts)
		defer benchDrain(b, s)
		if rec := post(s, "/v1/iterate", body); rec.Code != http.StatusOK {
			b.Fatalf("warm-up status %d", rec.Code)
		}
		req, rb := newReplayRequest("/v1/iterate", body)
		w := &nullResponseWriter{h: http.Header{}}
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rb.reset()
			h.ServeHTTP(w, req)
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, Options{}) })
	b.Run("traced", func(b *testing.B) {
		run(b, Options{Tracer: obs.NewTracer(discardObserver{})})
	})
}

// BenchmarkBatchServe pins the batch win: 64 warm items in one /v1/batch
// exchange versus the same 64 items as singleton requests. The issue's
// acceptance bar is batch ≥ 3× the singleton-loop throughput.
func BenchmarkBatchServe(b *testing.B) {
	const n = 64
	singles := make([]string, n)
	items := make([]string, n)
	for i := 0; i < n; i++ {
		singles[i] = iterateBody("min-min", "random", uint64(i+1))
		items[i] = batchItemJSON("iterate", singles[i])
	}
	batch := batchBody(items...)

	b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
		s := NewServer(Options{})
		defer benchDrain(b, s)
		if rec := post(s, "/v1/batch", batch); rec.Code != http.StatusOK {
			b.Fatalf("warm-up status %d: %s", rec.Code, rec.Body.String())
		}
		req, rb := newReplayRequest("/v1/batch", batch)
		w := &nullResponseWriter{h: http.Header{}}
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rb.reset()
			h.ServeHTTP(w, req)
		}
	})
	b.Run(fmt.Sprintf("singletons-%d", n), func(b *testing.B) {
		s := NewServer(Options{})
		defer benchDrain(b, s)
		if rec := post(s, "/v1/batch", batch); rec.Code != http.StatusOK {
			b.Fatalf("warm-up status %d: %s", rec.Code, rec.Body.String())
		}
		reqs := make([]*http.Request, n)
		rbs := make([]*replayBody, n)
		for i := 0; i < n; i++ {
			reqs[i], rbs[i] = newReplayRequest("/v1/iterate", singles[i])
		}
		w := &nullResponseWriter{h: http.Header{}}
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				rbs[j].reset()
				h.ServeHTTP(w, reqs[j])
			}
		}
	})
}
