package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestConcurrentPooledScratchNoAliasing is the aliasing hammer for the
// pooled serve-path buffers (request scratch, raw-key buffers, envelope
// assembly): many goroutines fire a seeded random mix of hits, misses,
// coalesced requests and batches at one server with a deliberately tiny
// cache (constant eviction and alias churn), and every response body must
// be byte-identical to an isolated reference server's answer. A pooled
// buffer leaking into a response another request can still see shows up
// here as a body mismatch — and under -race (the mode scripts/check.sh
// runs this in) as a data race on the shared backing array.
func TestConcurrentPooledScratchNoAliasing(t *testing.T) {
	s := NewServer(Options{CacheEntries: 8, QueueDepth: 256})
	defer drain(t, s)
	ref := NewServer(Options{})
	defer drain(t, ref)

	type reqCase struct{ path, body string }
	var cases []reqCase
	for seed := uint64(1); seed <= 10; seed++ {
		cases = append(cases, reqCase{"/v1/iterate", iterateBody("min-min", "random", seed)})
	}
	cases = append(cases,
		reqCase{"/v1/map", `{"etc":[[4,9,9],[9,2,2],[9,9,3]],"heuristic":"min-min"}`},
		reqCase{"/v1/map", `{"etc":[[4,9,9],[9,2,2],[9,9,3]],"heuristic":"max-min"}`},
	)
	want := make([]string, len(cases))
	for i, c := range cases {
		rec := post(ref, c.path, c.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", c.path, rec.Code, rec.Body.String())
		}
		want[i] = rec.Body.String()
	}

	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(g) + 1)
			for i := 0; i < iters; i++ {
				if src.Intn(4) == 0 {
					// A batch of 2-4 random items, each checked against its
					// reference bytes.
					n := 2 + src.Intn(3)
					picks := make([]int, n)
					items := make([]string, n)
					for j := range picks {
						picks[j] = src.Intn(len(cases))
						ep := strings.TrimPrefix(cases[picks[j]].path, "/v1/")
						items[j] = batchItemJSON(ep, cases[picks[j]].body)
					}
					rec := post(s, "/v1/batch", batchBody(items...))
					if rec.Code != http.StatusOK {
						errs <- fmt.Errorf("batch status %d: %s", rec.Code, rec.Body.String())
						return
					}
					var br BatchResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
						errs <- fmt.Errorf("batch envelope: %v", err)
						return
					}
					for j, res := range br.Results {
						if res.Status != http.StatusOK {
							errs <- fmt.Errorf("batch item status %d: %s", res.Status, res.Body)
							return
						}
						if string(res.Body) != strings.TrimSuffix(want[picks[j]], "\n") {
							errs <- fmt.Errorf("batch item body aliased/corrupted:\n got %s\nwant %s", res.Body, want[picks[j]])
							return
						}
					}
				} else {
					pick := src.Intn(len(cases))
					rec := post(s, cases[pick].path, cases[pick].body)
					if rec.Code != http.StatusOK {
						errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
						return
					}
					if rec.Body.String() != want[pick] {
						errs <- fmt.Errorf("body aliased/corrupted:\n got %s\nwant %s", rec.Body.String(), want[pick])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
