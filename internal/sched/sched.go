// Package sched models the heterogeneous-computing scheduling problem of the
// paper: a set of independent tasks mapped offline onto machines with known
// ETC values and initial ready times.
//
// The central types are Instance (an immutable problem: ETC matrix plus
// initial ready times), Mapping (an assignment of every task to a machine),
// and Schedule (a mapping evaluated against an instance: per-machine
// completion times, makespan, metrics). Completion time follows the paper's
// Equation 1: CT(t, m) = ETC(t, m) + RT(m), with RT updated as tasks
// accumulate on a machine.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/etc"
)

// Instance is an immutable scheduling problem.
type Instance struct {
	m     *etc.Matrix
	ready []float64 // initial ready time per machine
}

// NewInstance builds an instance from an ETC matrix and initial ready times.
// ready may be nil, meaning all machines start at time zero. Ready times
// must be finite and non-negative.
func NewInstance(m *etc.Matrix, ready []float64) (*Instance, error) {
	if m == nil {
		return nil, errors.New("sched: nil ETC matrix")
	}
	r := make([]float64, m.Machines())
	if ready != nil {
		if len(ready) != m.Machines() {
			return nil, fmt.Errorf("sched: %d ready times for %d machines", len(ready), m.Machines())
		}
		for i, v := range ready {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("sched: ready time %d = %g is not a finite non-negative value", i, v)
			}
			r[i] = v
		}
	}
	return &Instance{m: m, ready: r}, nil
}

// MustInstance is NewInstance but panics on error; for constants and tests.
func MustInstance(m *etc.Matrix, ready []float64) *Instance {
	in, err := NewInstance(m, ready)
	if err != nil {
		panic(err)
	}
	return in
}

// ETC returns the instance's matrix.
func (in *Instance) ETC() *etc.Matrix { return in.m }

// Tasks returns the number of tasks.
func (in *Instance) Tasks() int { return in.m.Tasks() }

// Machines returns the number of machines.
func (in *Instance) Machines() int { return in.m.Machines() }

// Ready returns machine m's initial ready time.
func (in *Instance) Ready(m int) float64 { return in.ready[m] }

// ReadyTimes returns a copy of all initial ready times.
func (in *Instance) ReadyTimes() []float64 {
	r := make([]float64, len(in.ready))
	copy(r, in.ready)
	return r
}

// Restrict returns the sub-instance over the given task and machine index
// sets (in the receiver's coordinates), carrying the retained machines'
// initial ready times.
func (in *Instance) Restrict(tasks, machines []int) (*Instance, error) {
	sub, err := in.m.SubMatrix(tasks, machines)
	if err != nil {
		return nil, err
	}
	r := make([]float64, len(machines))
	for i, mm := range machines {
		r[i] = in.ready[mm]
	}
	return &Instance{m: sub, ready: r}, nil
}

// Mapping assigns every task to a machine: Assign[t] is task t's machine.
type Mapping struct {
	Assign []int
}

// NewMapping returns a mapping with all assignments set to -1 (unmapped),
// for incremental construction by heuristics.
func NewMapping(tasks int) Mapping {
	a := make([]int, tasks)
	for i := range a {
		a[i] = -1
	}
	return Mapping{Assign: a}
}

// Clone returns a deep copy.
func (mp Mapping) Clone() Mapping {
	a := make([]int, len(mp.Assign))
	copy(a, mp.Assign)
	return Mapping{Assign: a}
}

// Equal reports whether two mappings are identical.
func (mp Mapping) Equal(o Mapping) bool {
	if len(mp.Assign) != len(o.Assign) {
		return false
	}
	for i, v := range mp.Assign {
		if o.Assign[i] != v {
			return false
		}
	}
	return true
}

// Complete reports whether every task is assigned.
func (mp Mapping) Complete() bool {
	for _, v := range mp.Assign {
		if v < 0 {
			return false
		}
	}
	return true
}

// Validate checks the mapping against an instance: complete and in range.
func (mp Mapping) Validate(in *Instance) error {
	if len(mp.Assign) != in.Tasks() {
		return fmt.Errorf("sched: mapping covers %d tasks, instance has %d", len(mp.Assign), in.Tasks())
	}
	for t, m := range mp.Assign {
		if m < 0 || m >= in.Machines() {
			return fmt.Errorf("sched: task %d assigned to machine %d, out of range [0,%d)", t, m, in.Machines())
		}
	}
	return nil
}

// TasksOn returns the tasks assigned to machine m, in task-index order.
func (mp Mapping) TasksOn(m int) []int {
	var ts []int
	for t, mm := range mp.Assign {
		if mm == m {
			ts = append(ts, t)
		}
	}
	return ts
}

// Schedule is a mapping evaluated against an instance.
type Schedule struct {
	Instance *Instance
	Mapping  Mapping
	// Completion[m] is machine m's finishing time: its initial ready time
	// plus the ETCs of all tasks assigned to it (order-independent, since
	// tasks are independent and machines run one task at a time).
	Completion []float64
	// TaskFinish[t] is the completion time of task t assuming tasks execute
	// on each machine in ascending task-index order (the order heuristics
	// append them is not part of the paper's model; per-machine totals are).
	TaskFinish []float64
}

// Evaluate computes the schedule for a mapping on an instance. It returns an
// error if the mapping is invalid.
func Evaluate(in *Instance, mp Mapping) (*Schedule, error) {
	if err := mp.Validate(in); err != nil {
		return nil, err
	}
	s := &Schedule{
		Instance:   in,
		Mapping:    mp.Clone(),
		Completion: in.ReadyTimes(),
		TaskFinish: make([]float64, in.Tasks()),
	}
	for t, m := range mp.Assign {
		s.Completion[m] += in.ETC().At(t, m)
		s.TaskFinish[t] = s.Completion[m]
	}
	return s, nil
}

// Makespan returns the largest machine completion time.
func (s *Schedule) Makespan() float64 {
	ms := math.Inf(-1)
	for _, c := range s.Completion {
		ms = math.Max(ms, c)
	}
	return ms
}

// MakespanMachine returns the index of the machine that finishes last,
// breaking ties toward the lowest index (the deterministic convention used
// throughout this repository), along with its completion time.
func (s *Schedule) MakespanMachine() (machine int, completion float64) {
	machine, completion = 0, s.Completion[0]
	for m := 1; m < len(s.Completion); m++ {
		if s.Completion[m] > completion {
			machine, completion = m, s.Completion[m]
		}
	}
	return machine, completion
}

// MinCompletion returns the smallest machine completion time.
func (s *Schedule) MinCompletion() float64 {
	mn := math.Inf(1)
	for _, c := range s.Completion {
		mn = math.Min(mn, c)
	}
	return mn
}

// MeanCompletion returns the mean machine completion time.
func (s *Schedule) MeanCompletion() float64 {
	sum := 0.0
	for _, c := range s.Completion {
		sum += c
	}
	return sum / float64(len(s.Completion))
}

// BalanceIndex returns min ready / max ready over machine completion times,
// the load-balance index used by the Switching Algorithm. By convention it
// is 0 when the maximum is 0 (nothing scheduled anywhere).
func (s *Schedule) BalanceIndex() float64 {
	return BalanceIndex(s.Completion)
}

// BalanceIndex computes min/max over a ready-time vector, 0 if max is 0.
func BalanceIndex(ready []float64) float64 {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, r := range ready {
		mn = math.Min(mn, r)
		mx = math.Max(mx, r)
	}
	if mx == 0 {
		return 0
	}
	return mn / mx
}

// Utilization returns, per machine, busy time divided by makespan (busy time
// excludes the initial ready time). Machines idle for the whole horizon have
// utilization 0. Returns nil if makespan is 0.
func (s *Schedule) Utilization() []float64 {
	ms := s.Makespan()
	if ms == 0 {
		return nil
	}
	u := make([]float64, len(s.Completion))
	for m, c := range s.Completion {
		u[m] = (c - s.Instance.Ready(m)) / ms
	}
	return u
}

// String renders per-machine loads compactly for logs and test failures.
func (s *Schedule) String() string {
	var b strings.Builder
	msMachine, ms := s.MakespanMachine()
	fmt.Fprintf(&b, "schedule makespan=%.4g (machine %d)\n", ms, msMachine)
	for m, c := range s.Completion {
		tasks := s.Mapping.TasksOn(m)
		fmt.Fprintf(&b, "  m%-2d CT=%-8.4g tasks=%v\n", m, c, tasks)
	}
	return b.String()
}

// CompletionsSorted returns the machine completion times in ascending order,
// useful for comparing schedules up to machine permutation.
func (s *Schedule) CompletionsSorted() []float64 {
	cs := make([]float64, len(s.Completion))
	copy(cs, s.Completion)
	sort.Float64s(cs)
	return cs
}
