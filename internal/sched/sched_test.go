package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/etc"
	"repro/internal/rng"
)

func testInstance(t *testing.T, vs [][]float64, ready []float64) *Instance {
	t.Helper()
	in, err := NewInstance(etc.MustNew(vs), ready)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestNewInstanceDefaults(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2}, {3, 4}}, nil)
	if in.Tasks() != 2 || in.Machines() != 2 {
		t.Fatalf("shape %dx%d", in.Tasks(), in.Machines())
	}
	if in.Ready(0) != 0 || in.Ready(1) != 0 {
		t.Fatal("default ready times are not zero")
	}
}

func TestNewInstanceErrors(t *testing.T) {
	m := etc.MustNew([][]float64{{1, 2}})
	if _, err := NewInstance(nil, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewInstance(m, []float64{1}); err == nil {
		t.Error("wrong-length ready accepted")
	}
	if _, err := NewInstance(m, []float64{1, -1}); err == nil {
		t.Error("negative ready accepted")
	}
	if _, err := NewInstance(m, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN ready accepted")
	}
}

func TestReadyTimesCopied(t *testing.T) {
	ready := []float64{1, 2}
	in := testInstance(t, [][]float64{{1, 2}}, ready)
	ready[0] = 99
	if in.Ready(0) != 1 {
		t.Fatal("instance aliased caller's ready slice")
	}
	rt := in.ReadyTimes()
	rt[1] = 99
	if in.Ready(1) != 2 {
		t.Fatal("ReadyTimes returned a live reference")
	}
}

func TestRestrict(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, []float64{10, 20, 30})
	sub, err := in.Restrict([]int{0, 2}, []int{2, 0})
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if sub.Tasks() != 2 || sub.Machines() != 2 {
		t.Fatalf("sub shape %dx%d", sub.Tasks(), sub.Machines())
	}
	if sub.ETC().At(0, 0) != 3 || sub.ETC().At(1, 1) != 7 {
		t.Fatalf("sub ETC wrong: %v", sub.ETC())
	}
	if sub.Ready(0) != 30 || sub.Ready(1) != 10 {
		t.Fatalf("sub ready = %v, want [30 10]", sub.ReadyTimes())
	}
}

func TestRestrictErrors(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2}}, nil)
	if _, err := in.Restrict(nil, []int{0}); err == nil {
		t.Error("empty task restriction accepted")
	}
	if _, err := in.Restrict([]int{0}, []int{9}); err == nil {
		t.Error("out-of-range machine accepted")
	}
}

func TestNewMappingUnassigned(t *testing.T) {
	mp := NewMapping(3)
	if mp.Complete() {
		t.Fatal("fresh mapping reports complete")
	}
	for t2, v := range mp.Assign {
		if v != -1 {
			t.Fatalf("task %d initialised to %d, want -1", t2, v)
		}
	}
}

func TestMappingCloneIndependent(t *testing.T) {
	mp := Mapping{Assign: []int{0, 1}}
	cl := mp.Clone()
	cl.Assign[0] = 9
	if mp.Assign[0] != 0 {
		t.Fatal("Clone aliased the original")
	}
}

func TestMappingEqual(t *testing.T) {
	a := Mapping{Assign: []int{0, 1}}
	b := Mapping{Assign: []int{0, 1}}
	c := Mapping{Assign: []int{1, 0}}
	d := Mapping{Assign: []int{0}}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal is wrong")
	}
}

func TestMappingValidate(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2}, {3, 4}}, nil)
	if err := (Mapping{Assign: []int{0, 1}}).Validate(in); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	if err := (Mapping{Assign: []int{0}}).Validate(in); err == nil {
		t.Error("short mapping accepted")
	}
	if err := (Mapping{Assign: []int{0, 2}}).Validate(in); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if err := (Mapping{Assign: []int{0, -1}}).Validate(in); err == nil {
		t.Error("unassigned task accepted")
	}
}

func TestTasksOn(t *testing.T) {
	mp := Mapping{Assign: []int{1, 0, 1, 1}}
	got := mp.TasksOn(1)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("TasksOn(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TasksOn(1) = %v, want %v", got, want)
		}
	}
	if mp.TasksOn(2) != nil {
		t.Fatal("TasksOn for empty machine should be nil")
	}
}

func TestEvaluateEquationOne(t *testing.T) {
	// CT(t,m) = ETC(t,m) + RT(m); machine totals accumulate.
	in := testInstance(t, [][]float64{{2, 9}, {3, 9}, {9, 4}}, []float64{1, 5})
	s, err := Evaluate(in, Mapping{Assign: []int{0, 0, 1}})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if s.Completion[0] != 1+2+3 {
		t.Errorf("machine 0 CT = %g, want 6", s.Completion[0])
	}
	if s.Completion[1] != 5+4 {
		t.Errorf("machine 1 CT = %g, want 9", s.Completion[1])
	}
	if s.TaskFinish[0] != 3 || s.TaskFinish[1] != 6 || s.TaskFinish[2] != 9 {
		t.Errorf("task finishes = %v", s.TaskFinish)
	}
	if got := s.Makespan(); got != 9 {
		t.Errorf("makespan = %g, want 9", got)
	}
}

func TestEvaluateRejectsInvalid(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2}}, nil)
	if _, err := Evaluate(in, Mapping{Assign: []int{5}}); err == nil {
		t.Fatal("invalid mapping evaluated")
	}
}

func TestEvaluateClonesMapping(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2}}, nil)
	mp := Mapping{Assign: []int{0}}
	s, _ := Evaluate(in, mp)
	mp.Assign[0] = 1
	if s.Mapping.Assign[0] != 0 {
		t.Fatal("Evaluate aliased the caller's mapping")
	}
}

func TestMakespanMachineTieLowestIndex(t *testing.T) {
	in := testInstance(t, [][]float64{{5, 9}, {9, 5}}, nil)
	s, _ := Evaluate(in, Mapping{Assign: []int{0, 1}})
	m, ct := s.MakespanMachine()
	if m != 0 || ct != 5 {
		t.Fatalf("MakespanMachine = %d,%g want 0,5 (tie to lowest index)", m, ct)
	}
}

func TestMinMeanCompletion(t *testing.T) {
	in := testInstance(t, [][]float64{{2, 9}, {9, 6}}, nil)
	s, _ := Evaluate(in, Mapping{Assign: []int{0, 1}})
	if s.MinCompletion() != 2 {
		t.Errorf("min = %g", s.MinCompletion())
	}
	if s.MeanCompletion() != 4 {
		t.Errorf("mean = %g", s.MeanCompletion())
	}
}

func TestBalanceIndex(t *testing.T) {
	if bi := BalanceIndex([]float64{0, 0, 0}); bi != 0 {
		t.Errorf("BI of all-zero = %g, want 0", bi)
	}
	if bi := BalanceIndex([]float64{2, 4}); bi != 0.5 {
		t.Errorf("BI = %g, want 0.5", bi)
	}
	if bi := BalanceIndex([]float64{3, 3}); bi != 1 {
		t.Errorf("BI = %g, want 1", bi)
	}
}

func TestUtilization(t *testing.T) {
	in := testInstance(t, [][]float64{{4, 9}, {9, 2}}, []float64{0, 2})
	s, _ := Evaluate(in, Mapping{Assign: []int{0, 1}})
	u := s.Utilization()
	if u[0] != 1.0 {
		t.Errorf("u[0] = %g, want 1", u[0])
	}
	if u[1] != 0.5 {
		t.Errorf("u[1] = %g, want 0.5 (busy 2 of makespan 4)", u[1])
	}
}

func TestScheduleString(t *testing.T) {
	in := testInstance(t, [][]float64{{1, 2}}, nil)
	s, _ := Evaluate(in, Mapping{Assign: []int{0}})
	if !strings.Contains(s.String(), "makespan=1") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestCompletionsSorted(t *testing.T) {
	in := testInstance(t, [][]float64{{5, 9, 9}, {9, 2, 9}, {9, 9, 7}}, nil)
	s, _ := Evaluate(in, Mapping{Assign: []int{0, 1, 2}})
	cs := s.CompletionsSorted()
	if cs[0] != 2 || cs[1] != 5 || cs[2] != 7 {
		t.Fatalf("sorted completions = %v", cs)
	}
	// Must not mutate the schedule.
	if s.Completion[0] != 5 {
		t.Fatal("CompletionsSorted mutated the schedule")
	}
}

// Property: for any random instance and any complete mapping, the sum of
// (completion - ready) over machines equals the sum of assigned ETCs, and
// makespan >= every task finish.
func TestEvaluateConservation(t *testing.T) {
	src := rng.New(123)
	f := func(seed uint64) bool {
		local := rng.New(seed)
		tasks := 1 + local.Intn(20)
		machines := 1 + local.Intn(6)
		m, err := etc.GenerateRange(etc.RangeParams{Tasks: tasks, Machines: machines, TaskHet: 50, MachineHet: 10}, local)
		if err != nil {
			return false
		}
		ready := make([]float64, machines)
		for i := range ready {
			ready[i] = local.Float64() * 10
		}
		in, err := NewInstance(m, ready)
		if err != nil {
			return false
		}
		mp := NewMapping(tasks)
		for t2 := range mp.Assign {
			mp.Assign[t2] = local.Intn(machines)
		}
		s, err := Evaluate(in, mp)
		if err != nil {
			return false
		}
		sumBusy, sumETC := 0.0, 0.0
		for mm, c := range s.Completion {
			sumBusy += c - ready[mm]
		}
		for t2, mm := range mp.Assign {
			sumETC += m.At(t2, mm)
		}
		if math.Abs(sumBusy-sumETC) > 1e-9*(1+sumETC) {
			return false
		}
		ms := s.Makespan()
		for _, tf := range s.TaskFinish {
			if tf > ms+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
