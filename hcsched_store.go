package hcsched

import "repro/internal/store"

// Tiered result store (see internal/store and schedd -store): a crash-safe
// on-disk second tier behind the serving layer's LRU, keyed by canonical
// request key and holding marshaled response bodies verbatim. A restarted
// daemon answers previously computed requests from disk — byte-identical,
// X-Schedd-Cache: disk — instead of recomputing them cold. Append-only
// segment files, a bloom filter so misses cost zero disk reads, and
// recovery that truncates a torn tail rather than ever serving it.
type (
	// ResultStore is the crash-safe on-disk body store. It satisfies the
	// serve layer's store interface: set it as ServeOptions.Store to wire
	// it under the LRU as a read-through/write-behind second tier.
	ResultStore = store.Store
	// ResultStoreOptions configures a ResultStore; the zero value uses the
	// full in-memory index and default segment/bloom sizing.
	ResultStoreOptions = store.Options
	// ResultStoreLayout selects the in-memory index layout:
	// ResultStoreIndexFull or ResultStoreIndexSparse.
	ResultStoreLayout = store.Layout
	// ResultStoreStats is a point-in-time snapshot of store state and
	// counters (keys, segments, recovered bytes, bloom negatives, reads,
	// health transitions and quarantined records).
	ResultStoreStats = store.Stats
	// ResultStoreHealth is the store's health state machine position:
	// healthy → degraded (write errors or a full disk; read-only, writes
	// pass only as request-counted probes) → offline (read errors; consults
	// gated to probes). The serving layer degrades to memory-only serving
	// on anything below healthy — never a client-visible error.
	ResultStoreHealth = store.Health
	// ResultStoreFS is the filesystem seam under a ResultStore: open, read,
	// write, sync. The default is the real OS filesystem; tests and chaos
	// harnesses mount a ResultStoreFaultFS instead.
	ResultStoreFS = store.FS
	// ResultStoreFile is one store segment file behind the seam.
	ResultStoreFile = store.File
	// ResultStoreFaultSpec configures seeded, deterministic I/O fault
	// injection for the seam (grammar:
	// seed=N,readerr=P,writeerr=P,syncerr=P,shortwrite=P,enospc=BYTES).
	ResultStoreFaultSpec = store.FaultSpec
	// ResultStoreFaultFS wraps a ResultStoreFS in the fault injector; every
	// decision flows from the spec seed, so fault schedules replay exactly.
	ResultStoreFaultFS = store.FaultFS
)

// Index layouts for ResultStoreOptions.Layout: the exact key map (zero
// false positives, more memory) and the fingerprint map (compact, rare
// extra disk probes). Both serve identical bytes.
const (
	ResultStoreIndexFull   = store.IndexFull
	ResultStoreIndexSparse = store.IndexSparse
)

// Health states for ResultStoreHealth: the store recovers upward only
// through successful request-counted probes (a read probe proves offline →
// degraded, an append probe proves degraded → healthy); wall clock never
// participates.
const (
	ResultStoreHealthy  = store.Healthy
	ResultStoreDegraded = store.Degraded
	ResultStoreOffline  = store.Offline
)

// OpenResultStore opens (or creates) a result store rooted at dir,
// replaying and validating its segments: whole records survive, a torn
// tail is truncated. Close flushes and releases it; pair every Open with a
// Close after the owning Server has drained.
func OpenResultStore(dir string, opts ResultStoreOptions) (*ResultStore, error) {
	return store.Open(dir, opts)
}

// ParseResultStoreFaultSpec parses the disk fault-injection grammar
// (seed=N,readerr=P,writeerr=P,syncerr=P,shortwrite=P,enospc=BYTES) used by
// schedd -store-fault-inject and the disk chaos scenarios.
func ParseResultStoreFaultSpec(s string) (ResultStoreFaultSpec, error) {
	return store.ParseFaultSpec(s)
}

// NewResultStoreFaultFS mounts the seeded fault injector over inner (nil
// means the real OS filesystem). Set the result as
// ResultStoreOptions.FS to run a store on a deterministically sick disk:
// faults withhold or tear I/O, never alter stored bytes, and one seed
// replays one fault schedule exactly.
func NewResultStoreFaultFS(inner ResultStoreFS, spec ResultStoreFaultSpec) *ResultStoreFaultFS {
	return store.NewFaultFS(inner, spec)
}
