package hcsched

import "repro/internal/store"

// Tiered result store (see internal/store and schedd -store): a crash-safe
// on-disk second tier behind the serving layer's LRU, keyed by canonical
// request key and holding marshaled response bodies verbatim. A restarted
// daemon answers previously computed requests from disk — byte-identical,
// X-Schedd-Cache: disk — instead of recomputing them cold. Append-only
// segment files, a bloom filter so misses cost zero disk reads, and
// recovery that truncates a torn tail rather than ever serving it.
type (
	// ResultStore is the crash-safe on-disk body store. It satisfies the
	// serve layer's store interface: set it as ServeOptions.Store to wire
	// it under the LRU as a read-through/write-behind second tier.
	ResultStore = store.Store
	// ResultStoreOptions configures a ResultStore; the zero value uses the
	// full in-memory index and default segment/bloom sizing.
	ResultStoreOptions = store.Options
	// ResultStoreLayout selects the in-memory index layout:
	// ResultStoreIndexFull or ResultStoreIndexSparse.
	ResultStoreLayout = store.Layout
	// ResultStoreStats is a point-in-time snapshot of store state and
	// counters (keys, segments, recovered bytes, bloom negatives, reads).
	ResultStoreStats = store.Stats
)

// Index layouts for ResultStoreOptions.Layout: the exact key map (zero
// false positives, more memory) and the fingerprint map (compact, rare
// extra disk probes). Both serve identical bytes.
const (
	ResultStoreIndexFull   = store.IndexFull
	ResultStoreIndexSparse = store.IndexSparse
)

// OpenResultStore opens (or creates) a result store rooted at dir,
// replaying and validating its segments: whole records survive, a torn
// tail is truncated. Close flushes and releases it; pair every Open with a
// Close after the owning Server has drained.
func OpenResultStore(dir string, opts ResultStoreOptions) (*ResultStore, error) {
	return store.Open(dir, opts)
}
