package hcsched_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"time"

	hcsched "repro"
)

// The resilience layer end to end: the service behind the seeded fault
// injector (every other response here is withheld — rejected, dropped or
// truncated), recovered by the resilient client. The answer is still the
// deterministic one: faults cost retries, never correctness.
func ExampleNewClient() {
	srv := hcsched.NewServer(hcsched.ServeOptions{})
	spec, err := hcsched.ParseFaultSpec("seed=2,reject=0.2:503:1,drop=0.15,truncate=0.15")
	if err != nil {
		fmt.Println(err)
		return
	}
	ts := httptest.NewServer(hcsched.NewFaultInjector(spec, srv.Handler(), nil))
	defer ts.Close()
	defer srv.Drain(context.Background())

	cl := hcsched.NewClient(hcsched.ClientOptions{
		Seed:        1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		MaxRetries:  10,
	})
	body := []byte(`{"etc":[[4,9,9],[9,2,2],[9,9,3]],"heuristic":"min-min"}`)
	for i := 0; i < 4; i++ {
		resp, err := cl.Post(context.Background(), ts.URL+"/v1/map", body)
		if err != nil {
			fmt.Println(err)
			return
		}
		var out hcsched.MapResponse
		if err := json.Unmarshal(resp.Body, &out); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("assign %v makespan %g\n", out.Assign, out.Makespan)
	}
	// Output:
	// assign [0 1 2] makespan 4
	// assign [0 1 2] makespan 4
	// assign [0 1 2] makespan 4
	// assign [0 1 2] makespan 4
}
