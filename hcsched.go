// Package hcsched is the public API of this repository: a library for
// heterogeneous-computing resource allocation implementing the iterative
// technique of Briceño, Oltikar, Siegel and Maciejewski, "Study of an
// Iterative Technique to Minimize Completion Times of Non-Makespan
// Machines" (IPPS/HCW 2007), together with the mapping heuristics it
// studies (MET, MCT, Min-Min, Max-Min, Duplex, OLB, Sufferage, K-Percent
// Best, the Switching Algorithm, and Genitor) and the synthetic ETC
// workload generators of the surrounding literature.
//
// A minimal session:
//
//	m := hcsched.MustETC([][]float64{
//		{4, 9, 9},
//		{9, 2, 2},
//		{9, 9, 3},
//	})
//	in, _ := hcsched.NewInstance(m, nil)
//	h, _ := hcsched.NewHeuristic("min-min", 0)
//	trace, _ := hcsched.Iterate(in, h, hcsched.DeterministicTies())
//	fmt.Println(trace.FinalMakespan())
//
// The package is a thin facade over the internal packages; every type it
// exposes is an alias, so values flow freely between the facade and the
// richer internal APIs used by the examples and experiments.
package hcsched

import (
	"io"

	"repro/internal/core"
	"repro/internal/counterexample"
	"repro/internal/etc"
	"repro/internal/experiments"
	"repro/internal/gantt"
	"repro/internal/heuristics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tiebreak"
)

// Core model types.
type (
	// ETCMatrix is the estimated-time-to-compute matrix: one row per task,
	// one column per machine.
	ETCMatrix = etc.Matrix
	// Instance is an immutable scheduling problem: an ETC matrix plus
	// initial machine ready times.
	Instance = sched.Instance
	// Mapping assigns every task to a machine.
	Mapping = sched.Mapping
	// Schedule is a mapping evaluated against an instance.
	Schedule = sched.Schedule
	// Heuristic maps all tasks of an instance onto its machines.
	Heuristic = heuristics.Heuristic
	// TieBreaker resolves choices among equally good candidates.
	TieBreaker = tiebreak.Policy
	// PolicyFunc supplies the tie-breaking policy per iteration.
	PolicyFunc = core.PolicyFunc
	// Trace records a full run of the iterative technique.
	Trace = core.Trace
	// Iteration is one heuristic run within the technique.
	Iteration = core.Iteration
	// MachineOutcome classifies a machine's final completion time against
	// the original mapping.
	MachineOutcome = core.MachineOutcome
	// WorkloadClass selects one of the canonical ETC heterogeneity classes.
	WorkloadClass = etc.Class
	// StudyConfig configures one Monte Carlo cell.
	StudyConfig = sim.Config
	// StudyResult aggregates one Monte Carlo cell.
	StudyResult = sim.Result
	// Experiment is one paper artifact reproduction.
	Experiment = experiments.Experiment
	// GanttOptions controls chart rendering.
	GanttOptions = gantt.Options
)

// Observability types (see internal/obs): the engine emits typed events to
// an Observer and aggregates into a Metrics registry; wall-clock fields are
// observational only and never influence scheduling.
type (
	// Observer receives engine events during IterateObserved.
	Observer = obs.Observer
	// Event is one typed engine observation.
	Event = obs.Event
	// IterationStartEvent opens each heuristic run.
	IterationStartEvent = obs.IterationStart
	// HeuristicDoneEvent closes each heuristic run with tie counters.
	HeuristicDoneEvent = obs.HeuristicDone
	// MachineFrozenEvent records each machine removal.
	MachineFrozenEvent = obs.MachineFrozen
	// TraceDoneEvent closes the run.
	TraceDoneEvent = obs.TraceDone
	// Metrics is a registry of named counters, gauges and histograms.
	Metrics = obs.Metrics
	// MetricsSnapshot is a deterministic point-in-time copy of a Metrics.
	MetricsSnapshot = obs.Snapshot
	// TraceWriter streams events as JSONL (one JSON object per line).
	TraceWriter = obs.JSONL
	// EventCollector buffers events in memory, for tests and inspection.
	EventCollector = obs.Collector
	// MultiObserver fans events out to several observers in order.
	MultiObserver = obs.Multi
)

// Machine outcome values.
const (
	Unchanged = core.Unchanged
	Improved  = core.Improved
	Worsened  = core.Worsened
)

// NewETC validates and builds an ETC matrix (values[task][machine]).
func NewETC(values [][]float64) (*ETCMatrix, error) { return etc.New(values) }

// MustETC is NewETC but panics on error; for literals and tests.
func MustETC(values [][]float64) *ETCMatrix { return etc.MustNew(values) }

// NewInstance pairs a matrix with initial ready times (nil means all zero).
func NewInstance(m *ETCMatrix, ready []float64) (*Instance, error) {
	return sched.NewInstance(m, ready)
}

// Evaluate computes the schedule of a mapping on an instance.
func Evaluate(in *Instance, mp Mapping) (*Schedule, error) { return sched.Evaluate(in, mp) }

// Heuristics returns the available heuristic names.
func Heuristics() []string { return heuristics.Names() }

// NewHeuristic builds a heuristic by registry name ("met", "mct", "min-min",
// "max-min", "duplex", "olb", "sufferage", "kpb", "swa", "genitor"). The
// seed drives stochastic heuristics (Genitor).
func NewHeuristic(name string, seed uint64) (Heuristic, error) {
	return heuristics.ByName(name, seed)
}

// Seeded wraps a heuristic with the paper's concluding proposal: keep the
// previous iteration's mapping whenever the heuristic fails to beat it, so
// the iterative technique can never increase makespan.
func Seeded(h Heuristic) Heuristic { return heuristics.Seeded{Inner: h} }

// DeterministicTies breaks every tie toward the lowest index — the
// convention under which the paper proves Min-Min, MCT and MET invariant.
func DeterministicTies() PolicyFunc { return core.Deterministic() }

// RandomTies breaks ties uniformly at random from a deterministic seeded
// stream.
func RandomTies(seed uint64) PolicyFunc {
	return core.FixedPolicy(tiebreak.NewRandom(rng.New(seed)))
}

// Iterate runs the paper's iterative technique: repeatedly map, freeze the
// makespan machine with its tasks, reset ready times, and re-map, until one
// machine remains.
func Iterate(in *Instance, h Heuristic, policy PolicyFunc) (*Trace, error) {
	return core.Iterate(in, h, policy)
}

// IterateObserved is Iterate with an attached Observer receiving the
// engine's typed events. A nil observer is exactly Iterate: no events are
// constructed and the hot path is untouched. Observation never perturbs the
// result — the returned Trace is identical either way.
func IterateObserved(in *Instance, h Heuristic, policy PolicyFunc, o Observer) (*Trace, error) {
	return core.IterateOpts(in, h, policy, core.Options{Observer: o})
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewTraceWriter returns an Observer streaming every event to w as JSONL.
// Check its Err method after the run for latched write errors.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewJSONL(w) }

// MetricsObserver returns an Observer folding engine events into m under
// the "engine." metric namespace.
func MetricsObserver(m *Metrics) Observer { return obs.NewMetricsObserver(m) }

// GenerateETC builds a random workload in the given class (the canonical
// range-based method) with the given shape, deterministically from seed.
func GenerateETC(class WorkloadClass, tasks, machines int, seed uint64) (*ETCMatrix, error) {
	return etc.GenerateClass(class, tasks, machines, rng.New(seed))
}

// WorkloadClasses returns the twelve canonical heterogeneity classes.
func WorkloadClasses() []WorkloadClass { return etc.AllClasses() }

// RenderGantt draws an ASCII Gantt chart of a schedule.
func RenderGantt(s *Schedule, opts GanttOptions) string { return gantt.Render(s, opts) }

// RunStudy executes one Monte Carlo cell measuring how the iterative
// technique behaves for a heuristic on random workloads.
func RunStudy(cfg StudyConfig) (StudyResult, error) { return sim.Run(cfg) }

// Experiments returns the registry reproducing every table and figure of
// the paper.
func Experiments() []Experiment { return experiments.All() }

// FindCounterexample searches random small-integer workloads for an
// instance on which the iterative technique makes the named heuristic's
// makespan worse. deterministicOnly restricts the search to deterministic
// tie-breaking (possible for SWA, KPB and Sufferage; provably impossible
// for Min-Min, MCT and MET). It returns the matrix, the number of
// candidates examined, and whether the search succeeded within attempts.
// An unknown heuristic name returns (nil, 0, false) without searching; use
// Heuristics to list the valid names.
func FindCounterexample(name string, deterministicOnly bool, tasks, machines int, attempts int64, seed uint64) (*ETCMatrix, int64, bool) {
	if _, err := heuristics.ByName(name, seed); err != nil {
		return nil, 0, false
	}
	target := counterexample.Target{
		Heuristic: func() heuristics.Heuristic {
			h, err := heuristics.ByName(name, seed)
			if err != nil {
				panic(err) // unreachable: name validated above
			}
			return h
		},
		DeterministicOnly: deterministicOnly,
	}
	gen := counterexample.GridGenerator(tasks, machines, counterexample.IntGrid(6))
	res, ok := counterexample.Search(target, gen, attempts, seed)
	if !ok {
		return nil, attempts, false
	}
	return res.Matrix, res.Attempts, true
}
