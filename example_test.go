package hcsched_test

import (
	"fmt"

	hcsched "repro"
)

// The paper's core loop: map, freeze the makespan machine, re-map.
func Example() {
	m := hcsched.MustETC([][]float64{
		{4, 9, 9},
		{9, 2, 2},
		{9, 9, 3},
	})
	in, _ := hcsched.NewInstance(m, nil)
	h, _ := hcsched.NewHeuristic("min-min", 0)
	trace, _ := hcsched.Iterate(in, h, hcsched.DeterministicTies())
	fmt.Printf("makespan %g -> %g, iterations %d\n",
		trace.OriginalMakespan(), trace.FinalMakespan(), len(trace.Iterations))
	// Output:
	// makespan 4 -> 4, iterations 3
}

// Deterministic ties keep Min-Min invariant (the paper's theorem); a
// scripted random tie can make things worse.
func ExampleIterate_theorem() {
	m := hcsched.MustETC([][]float64{
		{2, 2, 5},
		{1, 3, 4},
		{5, 3, 3},
		{5, 5, 4},
	})
	in, _ := hcsched.NewInstance(m, nil)
	h, _ := hcsched.NewHeuristic("mct", 0)
	trace, _ := hcsched.Iterate(in, h, hcsched.DeterministicTies())
	fmt.Println("changed:", trace.Changed(), "worse:", trace.MakespanIncreased())
	// Output:
	// changed: false worse: false
}

// Seeding any heuristic guarantees the technique cannot increase makespan
// (the paper's concluding proposal).
func ExampleSeeded() {
	m, _ := hcsched.GenerateETC(hcsched.WorkloadClass{HighTaskHet: true}, 12, 4, 7)
	in, _ := hcsched.NewInstance(m, nil)
	h, _ := hcsched.NewHeuristic("sufferage", 0)
	trace, _ := hcsched.Iterate(in, hcsched.Seeded(h), hcsched.RandomTies(1))
	fmt.Println("makespan increased:", trace.MakespanIncreased())
	// Output:
	// makespan increased: false
}

// Lower bounds and the exact solver certify heuristic quality.
func ExampleSolveExact() {
	m := hcsched.MustETC([][]float64{
		{2, 9},
		{9, 2},
		{3, 3},
	})
	in, _ := hcsched.NewInstance(m, nil)
	res, _ := hcsched.SolveExact(in, hcsched.ExactLimits{})
	fmt.Printf("optimal makespan %g (lower bound %g)\n", res.Makespan, hcsched.LowerBound(in))
	// Output:
	// optimal makespan 5 (lower bound 3.5)
}

// The dynamic environment the paper's online heuristics come from.
func ExampleSimulateImmediate() {
	w, _ := hcsched.GeneratePoissonWorkload(hcsched.WorkloadClass{}, 50, 4, 10, 3)
	res, _ := hcsched.SimulateImmediate(w, hcsched.ImmediateConfig{Rule: hcsched.ImmediateMCT})
	fmt.Println("all tasks mapped:", res.MappingEvents == 50)
	// Output:
	// all tasks mapped: true
}
