package hcsched

import (
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Horizontal-scale layer (see internal/cluster and cmd/schedgw): a
// deterministic sharded gateway over several schedd backends. Requests
// route by canonical request key through rendezvous (HRW) hashing — the
// same key always lands on the same backend, so every backend's cache
// stays warm for its shard — and /v1/batch posts are split per item,
// fanned out and merged back in input order. A cluster of N backends
// returns byte-identical response bodies to a single instance for every
// request: hit, miss, coalesced, or failed over to the next-ranked
// backend when the owner is unreachable.
type (
	// Gateway fronts a fixed set of schedd backends behind one handler,
	// with aggregated /healthz, /metricz and /statusz.
	Gateway = cluster.Gateway
	// GatewayOptions configures a Gateway: the backend set, the resilient
	// client template used per backend, and observability sinks.
	GatewayOptions = cluster.Options
	// ClusterBackend names one schedd instance and its base URL.
	ClusterBackend = cluster.Backend
	// ClusterRouter is the rendezvous-hashing router: deterministic
	// per-key backend ranking with minimal disruption on membership change.
	ClusterRouter = cluster.Router
	// LocalCluster runs N in-process schedd backends on loopback listeners
	// with per-backend kill/revive — the substrate for tests, the
	// schedload -backends sweep and schedgw -local.
	LocalCluster = cluster.Local
	// ClusterChaosScenario is a phased, seeded failure schedule for a
	// gateway over several backends: kills, rejoins and fault storms.
	ClusterChaosScenario = chaos.ClusterScenario
	// ClusterChaosPhase is one request-counted segment of a cluster
	// scenario timeline.
	ClusterChaosPhase = chaos.ClusterPhase
	// GatewayRouteEvent records one routed unit in an observer: the key
	// hash, the rendezvous-primary backend, the backend that served it and
	// the failover count.
	GatewayRouteEvent = obs.GatewayRoute
)

// ErrCodeUpstreamUnavailable is the gateway's only gateway-originated error
// code: every ranked backend was unreachable for the request's key.
const ErrCodeUpstreamUnavailable = serve.CodeUpstreamUnavailable

// NewGateway validates the backend set and returns a ready Gateway; mount
// its Handler on any *http.Server and call Drain to shut down gracefully.
func NewGateway(opts GatewayOptions) (*Gateway, error) { return cluster.NewGateway(opts) }

// NewClusterRouter builds a rendezvous router over the named members.
func NewClusterRouter(names []string) (*ClusterRouter, error) { return cluster.NewRouter(names) }

// StartLocalCluster boots n in-process schedd backends on ephemeral
// loopback listeners; Close shuts them down and drains their servers.
func StartLocalCluster(n int, opts ServeOptions) (*LocalCluster, error) {
	return cluster.StartLocal(n, opts)
}

// RunClusterChaos replays one cluster scenario — a gateway over several
// in-process backends under phased kills, rejoins and fault storms —
// and returns its machine-checked verdict, including the headline
// invariant: every response byte-identical to a single instance's.
func RunClusterChaos(sc ClusterChaosScenario) (*ChaosReport, error) { return chaos.RunCluster(sc) }

// BuiltinClusterChaosScenarios returns the stock cluster scenarios
// (backend-kill, backend-rejoin, split-routing-storm) with pinned seeds.
func BuiltinClusterChaosScenarios() []ClusterChaosScenario { return chaos.BuiltinCluster() }

// ClusterChaosScenarioByName finds a builtin cluster scenario by name.
func ClusterChaosScenarioByName(name string) (ClusterChaosScenario, error) {
	return chaos.ClusterByName(name)
}
