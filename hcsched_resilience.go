package hcsched

import (
	"net/http"

	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Resilience layer (see internal/faults and internal/client): the serving
// path's robustness story. The fault injector wraps any handler with
// deterministic, seeded failures — computed bodies are never altered, only
// withheld — and the resilient client survives them with bounded retries,
// seeded-jitter backoff, per-attempt timeouts and a circuit breaker.
// Wall-clock shapes only when requests are sent, never what any response
// contains.
type (
	// Client is the resilient schedd client; create with NewClient.
	Client = client.Client
	// ClientOptions configures a Client; the zero value is a working
	// configuration.
	ClientOptions = client.Options
	// ClientResponse is a successful response, with its full body and the
	// attempt count it cost.
	ClientResponse = client.Response
	// StatusError is returned for non-retryable HTTP error responses.
	StatusError = client.StatusError
	// FaultSpec configures the fault injector; parse one with
	// ParseFaultSpec.
	FaultSpec = faults.Spec
	// FaultInjector is the seeded fault-injection middleware.
	FaultInjector = faults.Injector
	// ClientRetryEvent records one retry decision (attempt, trigger,
	// backoff delay) in an observer.
	ClientRetryEvent = obs.ClientRetry
	// BreakerTransitionEvent records a circuit-breaker state change.
	BreakerTransitionEvent = obs.BreakerTransition
)

// ErrBreakerOpen is returned (wrapped) when the circuit breaker refuses a
// request without sending it.
var ErrBreakerOpen = client.ErrBreakerOpen

// NewClient builds a resilient client; it is safe for concurrent use.
func NewClient(opts ClientOptions) *Client { return client.New(opts) }

// ParseFaultSpec parses the fault-injection grammar
// "seed=N,latency=P:DUR,reject=P:CODE[:SECS],drop=P,truncate=P" (every
// field optional, probabilities in [0,1], CODE 503 or 429).
func ParseFaultSpec(spec string) (FaultSpec, error) { return faults.Parse(spec) }

// NewFaultInjector wraps inner with deterministic, seeded fault injection,
// recording faults.* counters into reg (nil for a private registry).
func NewFaultInjector(spec FaultSpec, inner http.Handler, reg *Metrics) *FaultInjector {
	return faults.New(spec, inner, reg)
}
