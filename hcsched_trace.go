package hcsched

import (
	"io"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TraceHeader is the HTTP header carrying trace IDs: clients propagate
// their root trace ID in it, servers echo the request's own trace ID back.
// IDs live in headers and logs only — never in response bodies.
const TraceHeader = serve.TraceHeader

// Tracing layer (see internal/obs trace.go and cmd/schedtrace): every
// request through the serving stack can carry a deterministic trace — a
// root span plus one child span per stage. Trace IDs derive from the
// canonical request key and an in-process sequence, never from the clock;
// span durations are wall-clock and observational only. A nil Tracer costs
// nothing: no span objects, no clock reads.
type (
	// Span is one emitted trace span (Kind "span"): root spans have
	// ParentID 0, stage spans point at their root.
	Span = obs.Span
	// Tracer mints traces; wire one into ServeOptions.Tracer or
	// ClientOptions.Tracer. Construct with NewTracer.
	Tracer = obs.Tracer
	// TraceSummary is the structural and per-stage analysis of a span
	// stream, as produced by SummarizeSpans.
	TraceSummary = obs.TraceSummary
	// StageStat is one per-stage row of a TraceSummary.
	StageStat = obs.StageStat
)

// NewTracer returns a Tracer emitting every finished trace's spans to sink
// (root first, then stages in end order). A nil sink returns a nil Tracer,
// which is valid everywhere and free.
func NewTracer(sink Observer) *Tracer { return obs.NewTracer(sink) }

// SpanMetricsObserver returns an Observer that folds stage spans into
// "<prefix>.stage_<name>_ms" histograms in m — the data behind a server's
// /statusz stage quantiles.
func SpanMetricsObserver(m *Metrics, prefix string) Observer {
	return obs.NewSpanMetricsObserver(m, prefix)
}

// ReadSpans decodes span events from a JSONL stream (as written by a
// TraceWriter sink), ignoring interleaved non-span records.
func ReadSpans(r io.Reader) ([]Span, error) { return obs.ReadSpans(r) }

// SummarizeSpans verifies a span stream's structure (one root per trace,
// no orphans or duplicates, stages nested within their root) and computes
// per-stage counts and duration quantiles.
func SummarizeSpans(spans []Span) *TraceSummary { return obs.SummarizeSpans(spans) }
