package hcsched

import (
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/etc"
	"repro/internal/rng"
	"repro/internal/sched"
)

// This file exposes the dynamic-arrival environment (the setting the
// paper's SWA, K-Percent Best and Sufferage heuristics were designed for)
// and the iterative-engine ablation options.

// Dynamic-environment types.
type (
	// DynamicWorkload pairs an ETC matrix with per-task arrival times.
	DynamicWorkload = dynamic.Workload
	// DynamicResult is the outcome of a dynamic simulation.
	DynamicResult = dynamic.Result
	// ImmediateRule selects the on-arrival mapping rule.
	ImmediateRule = dynamic.ImmediateRule
	// ImmediateConfig configures an immediate-mode simulation.
	ImmediateConfig = dynamic.ImmediateConfig
	// BatchConfig configures a batch-mode simulation.
	BatchConfig = dynamic.BatchConfig
	// IterateOptions tunes the iterative technique for ablation studies.
	IterateOptions = core.Options
	// FreezeRule selects which machine the technique freezes per iteration.
	FreezeRule = core.FreezeRule
)

// Immediate-mode rules.
const (
	ImmediateMCT = dynamic.ImmediateMCT
	ImmediateMET = dynamic.ImmediateMET
	ImmediateOLB = dynamic.ImmediateOLB
	ImmediateKPB = dynamic.ImmediateKPB
	ImmediateSWA = dynamic.ImmediateSWA
)

// Freeze rules.
const (
	FreezeMakespan      = core.FreezeMakespan
	FreezeMinCompletion = core.FreezeMinCompletion
)

// GeneratePoissonWorkload builds a dynamic workload whose tasks arrive as a
// Poisson process with the given mean inter-arrival time.
func GeneratePoissonWorkload(class WorkloadClass, tasks, machines int, meanInterarrival float64, seed uint64) (DynamicWorkload, error) {
	return dynamic.GeneratePoissonWorkload(etc.Class(class), tasks, machines, meanInterarrival, rng.New(seed))
}

// SimulateImmediate maps each task at its arrival instant with the
// configured rule.
func SimulateImmediate(w DynamicWorkload, cfg ImmediateConfig) (*DynamicResult, error) {
	return dynamic.SimulateImmediate(w, cfg)
}

// SimulateBatch maps arrived tasks in batches at fixed mapping intervals
// with the configured batch heuristic.
func SimulateBatch(w DynamicWorkload, cfg BatchConfig) (*DynamicResult, error) {
	return dynamic.SimulateBatch(w, cfg)
}

// IterateWithOptions is Iterate with ablation options: cap the number of
// iterations or change the freeze rule.
func IterateWithOptions(in *sched.Instance, h Heuristic, policy PolicyFunc, opts IterateOptions) (*Trace, error) {
	return core.IterateOpts(in, h, policy, opts)
}
