package hcsched_test

import (
	"fmt"

	hcsched "repro"
)

// ExampleRunChaos replays a builtin chaos scenario — a total 503 blackout
// that trips the client's circuit breaker, then clears — and prints its
// machine-checked verdict. Same scenario and seed, same report bytes.
func ExampleRunChaos() {
	sc, err := hcsched.ChaosScenarioByName("breaker-trip")
	if err != nil {
		panic(err)
	}
	rep, err := hcsched.RunChaos(sc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: pass=%v invariants=%d recovered=%d\n",
		rep.Scenario, rep.Pass, len(rep.Invariants), rep.Recovered)
	fmt.Println("first transition:", rep.BreakerTransitions[0])
	// Output:
	// breaker-trip: pass=true invariants=9 recovered=2
	// first transition: closed->open
}
