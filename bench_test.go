// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md for the experiment index), plus heuristic and engine throughput
// benchmarks on literature-scale workloads.
//
//	go test -bench=. -benchmem
package hcsched_test

import (
	"fmt"
	"testing"

	hcsched "repro"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/counterexample"
	"repro/internal/etc"
	"repro/internal/experiments"
	"repro/internal/gantt"
	"repro/internal/heuristics"
	"repro/internal/opt"
	"repro/internal/sched"
	"repro/internal/tiebreak"
)

// --- example-table benchmarks (Tables 1-17, Figures 3-19) -------------------

func benchIterate(b *testing.B, m *etc.Matrix, h heuristics.Heuristic) {
	in, err := sched.NewInstance(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Iterate(in, h, core.Deterministic()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExplore(b *testing.B, m *etc.Matrix, h heuristics.Heuristic) {
	in, err := sched.NewInstance(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := counterexample.ExploreTiePaths(in, h, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable01_MinMinETC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.MinMinExampleETC()
	}
}

func BenchmarkTable02_MinMinOriginal(b *testing.B) {
	benchIterate(b, experiments.MinMinExampleETC(), heuristics.MinMin{})
}

func BenchmarkTable03_MinMinIterative(b *testing.B) {
	benchExplore(b, experiments.MinMinExampleETC(), heuristics.MinMin{})
}

func BenchmarkTable04_MCTMETETC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.MCTMETExampleETC()
	}
}

func BenchmarkTable05_MCTOriginal(b *testing.B) {
	benchIterate(b, experiments.MCTMETExampleETC(), heuristics.MCT{})
}

func BenchmarkTable06_MCTIterative(b *testing.B) {
	benchExplore(b, experiments.MCTMETExampleETC(), heuristics.MCT{})
}

func BenchmarkTable07_METOriginal(b *testing.B) {
	benchIterate(b, experiments.MCTMETExampleETC(), heuristics.MET{})
}

func BenchmarkTable08_METIterative(b *testing.B) {
	benchExplore(b, experiments.MCTMETExampleETC(), heuristics.MET{})
}

func BenchmarkTable09_SWAETC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.SWAExampleETC()
	}
}

func swaExample() heuristics.SWA {
	low, high := experiments.SWAExampleThresholds()
	return heuristics.SWA{Low: low, High: high}
}

func BenchmarkTable10_SWAOriginal(b *testing.B) {
	benchIterate(b, experiments.SWAExampleETC(), swaExample())
}

func BenchmarkTable11_SWAIterative(b *testing.B) {
	// The SWA pathology is deterministic: the full iterative run IS the
	// regeneration of Table 11.
	benchIterate(b, experiments.SWAExampleETC(), swaExample())
}

func BenchmarkTable12_KPBETC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.KPBExampleETC()
	}
}

func BenchmarkTable13_KPBOriginal(b *testing.B) {
	benchIterate(b, experiments.KPBExampleETC(), heuristics.KPercentBest{Percent: experiments.KPBExamplePercent})
}

func BenchmarkTable14_KPBIterative(b *testing.B) {
	benchIterate(b, experiments.KPBExampleETC(), heuristics.KPercentBest{Percent: experiments.KPBExamplePercent})
}

func BenchmarkTable15_SufferageETC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.SufferageExampleETC()
	}
}

func BenchmarkTable16_SufferageOriginal(b *testing.B) {
	benchIterate(b, experiments.SufferageExampleETC(), heuristics.Sufferage{})
}

func BenchmarkTable17_SufferageIterative(b *testing.B) {
	benchIterate(b, experiments.SufferageExampleETC(), heuristics.Sufferage{})
}

// BenchmarkFigures_GanttRendering regenerates the mapping figures
// (Figures 3-4, 6-7, 9-12, 15-16, 18-19) as ASCII Gantt charts.
func BenchmarkFigures_GanttRendering(b *testing.B) {
	type fig struct {
		m *etc.Matrix
		h heuristics.Heuristic
	}
	figs := []fig{
		{experiments.MinMinExampleETC(), heuristics.MinMin{}},
		{experiments.MCTMETExampleETC(), heuristics.MCT{}},
		{experiments.MCTMETExampleETC(), heuristics.MET{}},
		{experiments.SWAExampleETC(), swaExample()},
		{experiments.KPBExampleETC(), heuristics.KPercentBest{Percent: experiments.KPBExamplePercent}},
		{experiments.SufferageExampleETC(), heuristics.Sufferage{}},
	}
	schedules := make([]*sched.Schedule, 0, len(figs))
	for _, f := range figs {
		in, err := sched.NewInstance(f.m, nil)
		if err != nil {
			b.Fatal(err)
		}
		mp, err := f.h.Map(in, tiebreak.First{})
		if err != nil {
			b.Fatal(err)
		}
		s, err := sched.Evaluate(in, mp)
		if err != nil {
			b.Fatal(err)
		}
		schedules = append(schedules, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range schedules {
			_ = gantt.Render(s, gantt.Options{Width: 56})
		}
	}
}

// --- full-experiment benchmarks (E1-E10) ------------------------------------

// BenchmarkExperiments regenerates each complete paper experiment, checks
// included (sized-down where the default is heavyweight).
func BenchmarkExperiments(b *testing.B) {
	cases := []struct {
		name string
		run  func() (*experiments.Report, error)
	}{
		{"E1_MinMinExample", experiments.RunMinMinExample},
		{"E2_MCTExample", experiments.RunMCTExample},
		{"E3_METExample", experiments.RunMETExample},
		{"E4_SWAExample", experiments.RunSWAExample},
		{"E5_KPBExample", experiments.RunKPBExample},
		{"E6_SufferageExample", experiments.RunSufferageExample},
		{"E7_GenitorNeverWorse", experiments.RunGenitorMonotone},
		{"E8_TheoremInvariance", func() (*experiments.Report, error) {
			return experiments.RunTheoremVerificationSized(20)
		}},
		{"E9_SeededMonotone", func() (*experiments.Report, error) {
			return experiments.RunSeededMonotoneSized(10)
		}},
		{"E10_SweepStudy", func() (*experiments.Report, error) {
			return experiments.RunMonteCarloStudySized(10, 12, 4)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := tc.run()
				if err != nil {
					b.Fatal(err)
				}
				if failed := rep.Failed(); len(failed) > 0 {
					b.Fatalf("%s: %d checks failed", rep.ID, len(failed))
				}
			}
		})
	}
}

// --- throughput benchmarks ----------------------------------------------------

// literatureWorkload is the canonical 512x16 shape of the Braun et al.
// comparison study, scaled per benchmark below.
func literatureWorkload(b *testing.B, tasks, machines int) *sched.Instance {
	b.Helper()
	m, err := hcsched.GenerateETC(
		hcsched.WorkloadClass{HighTaskHet: true, HighMachineHet: true},
		tasks, machines, 42)
	if err != nil {
		b.Fatal(err)
	}
	in, err := sched.NewInstance(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkHeuristicMap measures single-mapping throughput per heuristic on
// a 512x16 workload (Genitor on a smaller budget: it is a search, not a
// sweep).
func BenchmarkHeuristicMap(b *testing.B) {
	in := literatureWorkload(b, 512, 16)
	for _, name := range heuristics.Names() {
		b.Run(name, func(b *testing.B) {
			h, err := heuristics.ByName(name, 7)
			if err != nil {
				b.Fatal(err)
			}
			if name == "genitor" {
				h = heuristics.NewGenitor(heuristics.GenitorConfig{PopulationSize: 20, Steps: 50}, 7)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Map(in, tiebreak.First{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIterativeTechnique measures the full technique (all iterations)
// for each polynomial-time heuristic on a 128x8 workload.
func BenchmarkIterativeTechnique(b *testing.B) {
	in := literatureWorkload(b, 128, 8)
	for _, name := range []string{"olb", "met", "mct", "min-min", "max-min", "duplex", "sufferage", "kpb", "swa"} {
		b.Run(name, func(b *testing.B) {
			h, err := heuristics.ByName(name, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Iterate(in, h, core.Deterministic()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchKernel measures single-mapping throughput of the
// incremental completion-time kernel (internal/heuristics/kernel.go) across
// workload shapes: the batch heuristics' per-round cost is now dominated by
// the O(T) column refresh instead of the seed's O(T·M) full recomputation,
// so growing the machine count should barely move ns/op.
func BenchmarkBatchKernel(b *testing.B) {
	for _, shape := range []struct{ tasks, machines int }{{256, 8}, {256, 32}, {512, 16}} {
		in := literatureWorkload(b, shape.tasks, shape.machines)
		for _, name := range []string{"min-min", "max-min", "duplex", "sufferage"} {
			b.Run(fmt.Sprintf("%s-%dx%d", name, shape.tasks, shape.machines), func(b *testing.B) {
				h, err := heuristics.ByName(name, 7)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := h.Map(in, tiebreak.First{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIterateScaling shows how the technique scales with machine count
// (iterations are linear in machines; each Min-Min mapping is O(T^2 M)).
func BenchmarkIterateScaling(b *testing.B) {
	for _, machines := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("minmin-256x%d", machines), func(b *testing.B) {
			in := literatureWorkload(b, 256, machines)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Iterate(in, heuristics.MinMin{}, core.Deterministic()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCounterexampleSearch measures the searcher's candidate
// throughput (it is the tool that reconstructed the paper's tables).
func BenchmarkCounterexampleSearch(b *testing.B) {
	target := counterexample.Target{
		Heuristic:         func() heuristics.Heuristic { return heuristics.Sufferage{} },
		DeterministicOnly: true,
	}
	gen := counterexample.GridGenerator(5, 3, counterexample.IntGrid(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counterexample.Search(target, gen, 2000, uint64(i))
	}
}

// BenchmarkETCGeneration measures workload-generator throughput.
func BenchmarkETCGeneration(b *testing.B) {
	b.Run("range-512x16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hcsched.GenerateETC(hcsched.WorkloadClass{HighTaskHet: true, HighMachineHet: true}, 512, 16, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ablation benchmarks -------------------------------------------------------

// BenchmarkAblationFreezeRule compares the paper's makespan-machine freeze
// rule against the min-completion ablation (DESIGN.md §5).
func BenchmarkAblationFreezeRule(b *testing.B) {
	in := literatureWorkload(b, 96, 6)
	for _, tc := range []struct {
		name string
		rule core.FreezeRule
	}{
		{"paper-makespan", core.FreezeMakespan},
		{"ablation-min-completion", core.FreezeMinCompletion},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.IterateOpts(in, heuristics.Sufferage{}, core.Deterministic(),
					core.Options{FreezeRule: tc.rule}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIterationDepth compares the full technique against a cap
// of two iterations (original + first iterative mapping, the paper's
// example setting).
func BenchmarkAblationIterationDepth(b *testing.B) {
	in := literatureWorkload(b, 96, 8)
	for _, tc := range []struct {
		name string
		cap  int
	}{
		{"first-iteration-only", 2},
		{"full-technique", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.IterateOpts(in, heuristics.MinMin{}, core.Deterministic(),
					core.Options{MaxIterations: tc.cap}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- dynamic-environment benchmarks --------------------------------------------

// BenchmarkDynamicSimulation measures the dynamic-arrival simulator in both
// modes on a 256-task Poisson workload.
func BenchmarkDynamicSimulation(b *testing.B) {
	w, err := hcsched.GeneratePoissonWorkload(
		hcsched.WorkloadClass{HighTaskHet: true}, 256, 8, 100, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("immediate-mct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hcsched.SimulateImmediate(w, hcsched.ImmediateConfig{Rule: hcsched.ImmediateMCT}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("immediate-swa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hcsched.SimulateImmediate(w, hcsched.ImmediateConfig{Rule: hcsched.ImmediateSWA}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-minmin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hcsched.SimulateBatch(w, hcsched.BatchConfig{Heuristic: heuristics.MinMin{}, Interval: 500}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-sufferage", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hcsched.SimulateBatch(w, hcsched.BatchConfig{Heuristic: heuristics.Sufferage{}, Interval: 500}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMetaheuristics measures the search baselines (SA, generational
// GA, tabu) on a 64x8 workload at their default budgets.
func BenchmarkMetaheuristics(b *testing.B) {
	in := literatureWorkload(b, 64, 8)
	for _, name := range []string{"sa", "ga", "tabu"} {
		b.Run(name, func(b *testing.B) {
			h, err := heuristics.ByName(name, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.Map(in, tiebreak.First{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- bounds / exact-solver benchmarks -------------------------------------------

// BenchmarkBounds measures lower-bound computation on a 256x8 workload.
func BenchmarkBounds(b *testing.B) {
	in := literatureWorkload(b, 256, 8)
	b.Run("lp-relaxation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bounds.LPRelaxation(in)
		}
	})
	b.Run("best", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bounds.Best(in)
		}
	})
}

// BenchmarkExactSolve measures the branch-and-bound solver on paper-scale
// and small study-scale instances.
func BenchmarkExactSolve(b *testing.B) {
	for _, shape := range []struct{ tasks, machines int }{{8, 3}, {12, 4}} {
		b.Run(fmt.Sprintf("%dx%d", shape.tasks, shape.machines), func(b *testing.B) {
			in := literatureWorkload(b, shape.tasks, shape.machines)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := opt.Solve(in, opt.Limits{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Optimal {
					b.Fatal("not solved to optimality")
				}
			}
		})
	}
}

// BenchmarkExtensionExperiments regenerates the extension experiments E11
// and E12 at reduced size.
func BenchmarkExtensionExperiments(b *testing.B) {
	b.Run("E11_QualityComparison", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := experiments.RunQualityComparisonSized(4)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Failed()) > 0 {
				b.Fatal("E11 checks failed")
			}
		}
	})
	b.Run("E12_Sensitivity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := experiments.RunSensitivityStudySized(6)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Failed()) > 0 {
				b.Fatal("E12 checks failed")
			}
		}
	})
}
