package hcsched

import (
	"repro/internal/obs"
	"repro/internal/serve"
)

// Serving layer (see internal/serve and cmd/schedd): the library exposed as
// a deterministic JSON-over-HTTP service. Identical requests produce
// byte-identical response bodies whether computed or served from the result
// cache; wall-clock appears only in observability fields.
type (
	// Server is the scheduling service core: bounded request queue with
	// load shedding, worker pool, LRU result cache, graceful drain.
	Server = serve.Server
	// ServeOptions configures a Server; the zero value uses sane defaults.
	ServeOptions = serve.Options
	// ScheduleRequest is the wire request of /v1/map and /v1/iterate.
	ScheduleRequest = serve.Request
	// MapResponse is the wire response of /v1/map.
	MapResponse = serve.MapResponse
	// IterateResponse is the wire response of /v1/iterate.
	IterateResponse = serve.IterateResponse
	// IterationResult is one iteration inside an IterateResponse.
	IterationResult = serve.IterationResult
	// BatchScheduleRequest is the wire request of /v1/batch: many map or
	// iterate items answered in one HTTP exchange, results in input order.
	BatchScheduleRequest = serve.BatchRequest
	// BatchScheduleItem is one entry of a BatchScheduleRequest: a
	// ScheduleRequest plus the "map" or "iterate" endpoint serving it.
	BatchScheduleItem = serve.BatchItem
	// BatchScheduleResponse is the wire response of /v1/batch.
	BatchScheduleResponse = serve.BatchResponse
	// BatchScheduleItemResult is one per-item outcome in a
	// BatchScheduleResponse; its Body is byte-identical to the
	// corresponding singleton response minus the trailing newline.
	BatchScheduleItemResult = serve.BatchItemResult
	// RequestDoneEvent records one served request, with observational
	// latency, in an access log or metrics observer.
	RequestDoneEvent = obs.RequestDone
)

// NewServer starts the worker pool and returns a ready Server; call its
// Drain method to shut down gracefully. Mount its Handler on any
// *http.Server.
func NewServer(opts ServeOptions) *Server { return serve.NewServer(opts) }
