package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSelfcheck runs the full end-to-end smoke in-process: ephemeral port,
// pinned Table-1 /v1/iterate trace, byte-identical cache hit, the
// fault-injected recovery leg, drain.
func TestSelfcheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-selfcheck"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -selfcheck: %v\nstderr: %s", err, stderr.String())
	}
	for _, want := range []string{
		"[ok  ] healthz",
		"[ok  ] /v1/iterate reproduces the pinned Table-1 trace",
		"[ok  ] cache hit is byte-identical to the computed response",
		"[ok  ] metricz reports the cache hit",
		"[ok  ] every request traced: well-formed span trees, stable key half, header matches a root",
		"[ok  ] statusz folds the spans into per-stage latency quantiles",
		"[ok  ] 16 fault-injected replays recovered byte-identical responses",
		"[ok  ] metricz reports 13 injected faults (3 rejected, 3 dropped, 5 truncated) and 11 client retries",
		"[ok  ] deliberate panic isolated: structured 500, panics_total=1, cache intact",
		"[ok  ] chaos scenario breaker-trip: 9 invariants hold",
		"[ok  ] restart recovery: disk hit byte-identical across kill/restart, then promoted to a memory hit",
		"[ok  ] drained",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestSelfcheckWritesAccessLog checks the -access-log JSONL sink records
// one request_done line per scheduling request, each stamped with the
// request's trace ID.
func TestSelfcheckWritesAccessLog(t *testing.T) {
	path := t.TempDir() + "/requests.jsonl"
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-selfcheck", "-access-log", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// The selfcheck issues two clean scheduling requests (miss then hit),
	// then the fault-injection leg replays the same body; every replay that
	// reaches the engine is a cache hit. Faults that stop a request before
	// the engine (rejects, drops) leave no request_done line. The panic leg
	// adds exactly one status-500 record — panic-recovered requests must land
	// in the access log like any other outcome — plus one more cache hit.
	if len(lines) < 4 {
		t.Fatalf("%d access-log lines, want at least 4 (clean miss + hits + panic 500):\n%s", len(lines), data)
	}
	// The sink also records the panic leg's panic_recovered event; keep only
	// request_done records for the per-request assertions below.
	recovered := 0
	batches := 0
	var done []string
	for _, line := range lines {
		if strings.Contains(line, `"event":"panic_recovered"`) {
			recovered++
			continue
		}
		if !strings.Contains(line, `"event":"request_done"`) {
			t.Fatalf("unexpected access-log line: %s", line)
		}
		switch {
		case strings.Contains(line, `"endpoint":"/v1/iterate"`):
		case strings.Contains(line, `"endpoint":"/v1/batch"`):
			// The batch leg's posts land as one request_done each, with the
			// per-item count in the "items" field.
			if !strings.Contains(line, `"items":`) {
				t.Fatalf("batch request_done line lacks an items count: %s", line)
			}
			batches++
		default:
			t.Fatalf("unexpected access-log endpoint: %s", line)
		}
		if !strings.Contains(line, `"trace_id":"`) {
			t.Fatalf("request_done line lacks a trace_id: %s", line)
		}
		done = append(done, line)
	}
	if batches != 3 {
		t.Fatalf("%d /v1/batch request_done lines, want exactly 3 (mixed batch + identical replay pair):\n%s", batches, data)
	}
	if recovered != 1 {
		t.Fatalf("%d panic_recovered lines, want exactly 1:\n%s", recovered, data)
	}
	// Every request gets its own trace: IDs never repeat, even though the
	// replays share one canonical request key (the sequence half differs).
	ids := map[string]bool{}
	for _, line := range done {
		_, rest, _ := strings.Cut(line, `"trace_id":"`)
		id, _, _ := strings.Cut(rest, `"`)
		if ids[id] {
			t.Fatalf("trace_id %s repeated across requests:\n%s", id, data)
		}
		ids[id] = true
	}
	lines = done
	if !strings.Contains(lines[0], `"cache":"miss"`) {
		t.Fatalf("first access-log line should be the computed miss:\n%s", data)
	}
	panicLines := 0
	for _, line := range lines[1:] {
		if strings.Contains(line, `"status":500`) {
			panicLines++
			if strings.Contains(line, `"cache"`) {
				t.Fatalf("panic-recovered record claims a cache state: %s", line)
			}
			continue
		}
		if strings.Contains(line, `"endpoint":"/v1/batch"`) {
			// Batch cache state is per-item inside the envelope; the
			// request-level record carries none unless the whole envelope
			// replayed from cache.
			continue
		}
		if !strings.Contains(line, `"cache":"hit"`) {
			t.Fatalf("every non-panic line after the first should be a cache hit: %s", line)
		}
	}
	if panicLines != 1 {
		t.Fatalf("%d status-500 access-log lines, want exactly 1 (the panic leg):\n%s", panicLines, data)
	}
}

// TestFaultInjectFlagValidation pins -fault-inject's fail-fast contract: a
// typo'd spec is an error before any listener opens, and combining it with
// -selfcheck (which runs its own pinned fault leg) is refused.
func TestFaultInjectFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fault-inject", "reject=2.0:503"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-fault-inject") {
		t.Fatalf("bad spec: err = %v, want a -fault-inject parse error", err)
	}
	err = run([]string{"-selfcheck", "-fault-inject", "drop=0.5"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-selfcheck") {
		t.Fatalf("with -selfcheck: err = %v, want a conflict error", err)
	}
}

// TestFlagValueValidation pins the usage-error sweep: nonsensical flag
// values fail fast with a usage-class error (exit 2), before any listener,
// pool or cache is constructed.
func TestFlagValueValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring the error must mention
	}{
		{[]string{"-queue", "-1"}, "-queue"},
		{[]string{"-workers", "-2"}, "-workers"},
		{[]string{"-timeout", "-1s"}, "-timeout"},
		{[]string{"-drain-timeout", "0s"}, "-drain-timeout"},
		{[]string{"-selfcheck", "-store", t.TempDir()}, "-store"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		err := run(tc.args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%v): want usage error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): err %q, want mention of %q", tc.args, err, tc.want)
		}
		if exitCode(err) != 2 {
			t.Errorf("run(%v): exit code %d, want 2 (usage)", tc.args, exitCode(err))
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v): usage leaked to stdout: %s", tc.args, stdout.String())
		}
	}
	// Runtime failures stay exit 1, and flag-syntax errors are usage.
	if got := exitCode(errOpaque{}); got != 1 {
		t.Errorf("exitCode(runtime error) = %d, want 1", got)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &stdout, &stderr); exitCode(err) != 2 {
		t.Errorf("exitCode(flag parse error) = %d, want 2", exitCode(err))
	}
}

type errOpaque struct{}

func (errOpaque) Error() string { return "runtime failure" }

// TestBadFlags pins the run() error contract: flag errors return an error
// (after usage on stderr) and write nothing to stdout.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Fatal("run with unknown flag: want error")
	}
	if stdout.Len() != 0 {
		t.Errorf("usage leaked to stdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-addr") {
		t.Errorf("stderr missing usage text: %s", stderr.String())
	}
}

// TestEphemeralAddr pins the embedding contract satellite tools (schedgw
// -local, scripts, tests) rely on: `-addr 127.0.0.1:0` binds an ephemeral
// port, the bound address is printed to stdout in the "listening on" line
// before any request is served, the daemon answers on it, and SIGTERM
// drains cleanly.
func TestEphemeralAddr(t *testing.T) {
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		err := run([]string{"-addr", "127.0.0.1:0"}, pw, &stderr)
		pw.Close()
		done <- err
	}()

	sc := bufio.NewScanner(pr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "schedd: listening on "); ok {
			base = rest[:strings.Index(rest, " ")]
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line before stdout closed; stderr: %s", stderr.String())
	}
	if strings.HasSuffix(base, ":0") {
		t.Fatalf("listening line still carries port 0: %q", base)
	}
	// Keep draining stdout so the daemon's drain messages never block.
	go func() {
		for sc.Scan() {
		}
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET %s/healthz: %v", base, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM; stderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}
