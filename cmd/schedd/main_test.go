package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestSelfcheck runs the full end-to-end smoke in-process: ephemeral port,
// pinned Table-1 /v1/iterate trace, byte-identical cache hit, drain.
func TestSelfcheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-selfcheck"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -selfcheck: %v\nstderr: %s", err, stderr.String())
	}
	for _, want := range []string{
		"[ok  ] healthz",
		"[ok  ] /v1/iterate reproduces the pinned Table-1 trace",
		"[ok  ] cache hit is byte-identical to the computed response",
		"[ok  ] metricz reports the cache hit",
		"[ok  ] drained",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestSelfcheckWritesAccessLog checks the -access-log JSONL sink records
// one request_done line per scheduling request.
func TestSelfcheckWritesAccessLog(t *testing.T) {
	path := t.TempDir() + "/requests.jsonl"
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-selfcheck", "-access-log", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// The selfcheck issues exactly two scheduling requests (miss then hit).
	if len(lines) != 2 {
		t.Fatalf("%d access-log lines, want 2:\n%s", len(lines), data)
	}
	for _, line := range lines {
		if !strings.Contains(line, `"event":"request_done"`) || !strings.Contains(line, `"endpoint":"/v1/iterate"`) {
			t.Fatalf("unexpected access-log line: %s", line)
		}
	}
	if !strings.Contains(lines[0], `"cache":"miss"`) || !strings.Contains(lines[1], `"cache":"hit"`) {
		t.Fatalf("access log should record a miss then a hit:\n%s", data)
	}
}

// TestBadFlags pins the run() error contract: flag errors return an error
// (after usage on stderr) and write nothing to stdout.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Fatal("run with unknown flag: want error")
	}
	if stdout.Len() != 0 {
		t.Errorf("usage leaked to stdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-addr") {
		t.Errorf("stderr missing usage text: %s", stderr.String())
	}
}
