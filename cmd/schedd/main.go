// Command schedd is the long-running HTTP scheduling daemon: the
// repository's heuristics and iterative technique served online over JSON,
// with a bounded request queue (429 on overload), a worker pool, an LRU
// result cache and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	schedd [-addr 127.0.0.1:8080] [-queue 64] [-workers N] [-cache 256]
//	       [-timeout 5s] [-drain-timeout 10s] [-access-log requests.jsonl]
//	       [-trace-out spans.jsonl] [-pprof 127.0.0.1:6060] [-fault-inject spec]
//	       [-store dir]
//	schedd -selfcheck
//
// Endpoints:
//
//	POST /v1/map      one heuristic run        (serve.Request -> serve.MapResponse)
//	POST /v1/iterate  the iterative technique  (serve.Request -> serve.IterateResponse)
//	POST /v1/batch    many map/iterate items   (serve.BatchRequest -> serve.BatchResponse)
//	GET  /healthz     liveness + queue state; 503 while draining
//	GET  /metricz     serve.* metrics snapshot (JSON; ?format=text for text)
//	GET  /statusz     operational summary: counters, cache hit ratio, gauges,
//	                  request latency and per-stage latency quantiles
//
// -store enables the crash-safe disk result tier behind the LRU: computed
// bodies are appended (write-behind) to segment files in the directory, and
// after a restart a request computed in a previous lifetime answers
// byte-identically with X-Schedd-Cache: disk, promoted back into the LRU.
//
// Every scheduling request is traced: a root span plus one span per stage
// (decode, validate, queue_wait, cache_lookup, disk_lookup when -store is
// set, coalesce_wait, compute,
// marshal, write; batch requests add batch_split and batch_merge around the
// per-item fan-out), with IDs derived from the canonical request key and an
// in-process sequence — never from the clock. The trace ID is echoed in the
// X-Schedd-Trace response header and stamped on access-log records; span
// durations feed the /statusz stage quantiles. -trace-out additionally
// appends every span as JSONL (analyze with cmd/schedtrace). -pprof serves
// net/http/pprof on a secondary listener, never on the service address.
//
// Responses are deterministic in the request: same matrix, heuristic, tie
// policy and seed give byte-identical bodies, cached or computed. -selfcheck
// starts the daemon on an ephemeral port, replays the pinned Table-1
// Min-Min trace over real HTTP (twice: computed, then cached), verifies
// both bodies bit-for-bit, drives the same item through POST /v1/batch
// (cached item bytes, isolated per-item 422, byte-identical envelope
// replay), then replays it through the deterministic fault
// injector (internal/faults) with the resilient client (internal/client),
// verifying recovery and byte-identity under injected 503s, dropped
// connections and truncated bodies, drives a deliberate worker panic and
// verifies isolation (structured 500, serve.panics_total, cache intact),
// replays a builtin chaos scenario (internal/chaos) requiring every
// invariant to hold, proves the disk result tier across a kill/restart
// (byte-identical X-Schedd-Cache: disk answer, then promotion to a memory
// hit), drains, and exits 0 — the smoke test run by
// scripts/check.sh.
//
// -fault-inject is a STAGING flag: it wraps the whole service in the
// seeded fault injector (spec grammar: seed=N,latency=P:DUR,
// reject=P:CODE[:SECS],drop=P,truncate=P) so clients can be exercised
// against a misbehaving daemon. Never enable it on a production instance.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof listener's DefaultServeMux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks a command-line mistake: bad flag syntax or a nonsensical
// value. main exits 2 for these (usage), 1 for runtime failures, so wrappers
// and scripts can tell operator errors from daemon errors.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.As(err, &usageError{}):
		return 2
	default:
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
		queue        = fs.Int("queue", 0, "pending-request queue depth before 429 shedding (0 = default)")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache        = fs.Int("cache", 0, "LRU result-cache entries (0 = default, negative disables)")
		timeout      = fs.Duration("timeout", 0, "per-request deadline cap (0 = default 5s)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight requests on shutdown")
		accessLog    = fs.String("access-log", "", "append request_done events as JSONL to this path")
		traceOut     = fs.String("trace-out", "", "append request spans as JSONL to this path (analyze with cmd/schedtrace)")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on a secondary listener at this address (e.g. 127.0.0.1:6060); never exposed on -addr")
		faultInject  = fs.String("fault-inject", "", "STAGING ONLY: wrap the service in the seeded fault injector (e.g. seed=7,latency=0.1:5ms,reject=0.2:503:1,drop=0.05,truncate=0.05)")
		storeDir     = fs.String("store", "", "crash-safe disk result tier directory (created if missing); after a restart previously computed bodies answer byte-identically with X-Schedd-Cache: disk")
		storeFaults  = fs.String("store-fault-inject", "", "STAGING ONLY: mount the disk result tier on the seeded fault filesystem (e.g. seed=7,readerr=0.1,writeerr=0.1,syncerr=0.05,shortwrite=0.1,enospc=1048576); requires -store")
		selfcheck    = fs.Bool("selfcheck", false, "serve on an ephemeral port, verify the pinned Table-1 trace end to end, drain, exit")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	// Validate flag values before any construction: a nonsensical value is
	// an operator mistake and must fail fast with usage (exit 2), never
	// reach pool or cache construction as a default-by-accident.
	switch {
	case *queue < 0:
		return usagef("-queue %d: must be >= 0 (0 = default)", *queue)
	case *workers < 0:
		return usagef("-workers %d: must be >= 0 (0 = GOMAXPROCS)", *workers)
	case *timeout < 0:
		return usagef("-timeout %s: must be >= 0 (0 = default)", *timeout)
	case *drainTimeout <= 0:
		return usagef("-drain-timeout %s: must be positive", *drainTimeout)
	}
	var faultSpec faults.Spec
	if *faultInject != "" {
		if *selfcheck {
			return usagef("-fault-inject cannot be combined with -selfcheck (the selfcheck runs its own pinned fault leg)")
		}
		var err error
		faultSpec, err = faults.Parse(*faultInject)
		if err != nil {
			return usagef("-fault-inject: %w", err)
		}
	}
	if *storeDir != "" && *selfcheck {
		return usagef("-store cannot be combined with -selfcheck (the selfcheck runs its own restart-recovery leg on a temporary directory)")
	}
	var storeFS store.FS
	if *storeFaults != "" {
		if *storeDir == "" {
			return usagef("-store-fault-inject requires -store (it faults the disk tier's filesystem)")
		}
		spec, err := store.ParseFaultSpec(*storeFaults)
		if err != nil {
			return usagef("-store-fault-inject: %w", err)
		}
		storeFS = store.NewFaultFS(nil, spec)
	}
	opts := serve.Options{
		QueueDepth:     *queue,
		Workers:        *workers,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{FS: storeFS})
		if err != nil {
			return fmt.Errorf("-store: %w", err)
		}
		// Deferred close runs after serveForever has drained, so the
		// write-behind queue is already flushed into the store.
		defer st.Close()
		opts.Store = st
	}
	var logSink *obs.JSONL
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		logSink = obs.NewJSONL(f)
		opts.Observer = logSink
	}
	// Tracing is always on in the daemon: span durations feed the /statusz
	// stage quantiles through a span-metrics observer on the server's own
	// registry. -trace-out additionally streams every span as JSONL, and the
	// selfcheck adds an in-memory collector so its trace leg can verify the
	// span trees it produced. Span IDs derive from request keys and a
	// sequence, so none of this perturbs response bytes.
	reg := obs.NewMetrics()
	opts.Metrics = reg
	sinks := obs.Multi{obs.NewSpanMetricsObserver(reg, "serve")}
	var traceSink *obs.JSONL
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		sinks = append(sinks, traceSink)
	}
	var spanCol *obs.Collector
	if *selfcheck {
		spanCol = &obs.Collector{}
		sinks = append(sinks, spanCol)
	}
	opts.Tracer = obs.NewTracer(sinks)
	if *selfcheck {
		// The selfcheck's panic leg drives a deliberate panic through the
		// worker pool to prove isolation; the trigger fires only on the chaos
		// sentinel seed, which scenario validation refuses for real workloads.
		opts.PanicTrigger = func(seed uint64) {
			if seed == chaos.PanicSeed {
				panic("selfcheck: deliberate panic")
			}
		}
	}
	srv := serve.NewServer(opts)

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(stdout, "schedd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, nil) // DefaultServeMux carries only the pprof handlers
	}

	var err error
	if *selfcheck {
		err = selfCheck(srv, spanCol, opts.Tracer, stdout)
	} else {
		handler := http.Handler(srv.Handler())
		if *faultInject != "" {
			handler = faults.New(faultSpec, handler, srv.Metrics())
			fmt.Fprintf(stdout, "schedd: FAULT INJECTION ACTIVE (%s)\n", faultSpec)
		}
		err = serveForever(srv, handler, *addr, *drainTimeout, stdout)
	}
	if err != nil {
		return err
	}
	if logSink != nil {
		if err := logSink.Err(); err != nil {
			return fmt.Errorf("writing -access-log: %w", err)
		}
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
	}
	return nil
}

// serveForever listens on addr and serves until SIGTERM/SIGINT, then drains:
// the listener stops accepting, in-flight requests finish (bounded by
// drainTimeout), the worker pool exits.
func serveForever(srv *serve.Server, handler http.Handler, addr string, drainTimeout time.Duration, stdout io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schedd: listening on http://%s (%s)\n", ln.Addr(), srv)
	hs := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "schedd: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Drain(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "schedd: drained")
	return nil
}

// selfCheck exercises the whole service end to end over a real TCP
// listener: the pinned Table-1 Min-Min matrix through /v1/iterate (computed
// then cached, byte-identical), /healthz, /metricz, the tracing path
// (spans land in spanCol), and a graceful drain. Everything checked is
// deterministic; only [ok  ] lines are printed.
func selfCheck(srv *serve.Server, spanCol *obs.Collector, tracer *obs.Tracer, stdout io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "schedd: selfcheck against %s\n", base)

	if err := expectStatus(http.Get(base + "/healthz")); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	fmt.Fprintln(stdout, "[ok  ] healthz")

	// The pinned Table-1 matrix (experiments.MinMinExampleETC): min-min
	// under deterministic ties gives machine completions (5, 4, 2), and by
	// the paper's invariance theorem the iterative technique changes
	// nothing: final == original, makespan 5, every machine unchanged.
	reqBody, err := json.Marshal(serve.Request{
		ETC:       experiments.MinMinExampleETC().Values(),
		Heuristic: "min-min",
		Ties:      "det",
		Seed:      1,
	})
	if err != nil {
		return err
	}
	first, firstHdr, err := postIterate(base, reqBody)
	if err != nil {
		return err
	}
	var ir serve.IterateResponse
	if err := json.Unmarshal(first, &ir); err != nil {
		return fmt.Errorf("decoding /v1/iterate response: %w", err)
	}
	switch {
	case ir.OriginalMakespan != 5 || ir.FinalMakespan != 5:
		return fmt.Errorf("table-1 makespan %g -> %g, want 5 -> 5", ir.OriginalMakespan, ir.FinalMakespan)
	case ir.MakespanIncreased:
		return fmt.Errorf("table-1 trace reports a makespan increase")
	case len(ir.FinalCompletion) != 3 || ir.FinalCompletion[0] != 5 || ir.FinalCompletion[1] != 4 || ir.FinalCompletion[2] != 2:
		return fmt.Errorf("table-1 final completions %v, want [5 4 2]", ir.FinalCompletion)
	case len(ir.Iterations) != 3:
		return fmt.Errorf("table-1 trace has %d iterations, want 3", len(ir.Iterations))
	case strings.Join(ir.Outcomes, ",") != "unchanged,unchanged,unchanged":
		return fmt.Errorf("table-1 outcomes %v, want all unchanged (invariance theorem)", ir.Outcomes)
	case firstHdr != "miss":
		return fmt.Errorf("first request X-Schedd-Cache %q, want miss", firstHdr)
	}
	fmt.Fprintln(stdout, "[ok  ] /v1/iterate reproduces the pinned Table-1 trace")

	second, secondHdr, err := postIterate(base, reqBody)
	if err != nil {
		return err
	}
	if secondHdr != "hit" {
		return fmt.Errorf("second request X-Schedd-Cache %q, want hit", secondHdr)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("cached body differs from computed body")
	}
	fmt.Fprintln(stdout, "[ok  ] cache hit is byte-identical to the computed response")

	resp, err := http.Get(base + "/metricz")
	if err != nil {
		return err
	}
	snapBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(snapBody, &snap); err != nil {
		return fmt.Errorf("decoding /metricz: %w", err)
	}
	hits := int64(-1)
	for _, c := range snap.Counters {
		if c.Name == "serve.cache_hits" {
			hits = c.Value
		}
	}
	if hits != 1 {
		return fmt.Errorf("metricz serve.cache_hits = %d, want 1", hits)
	}
	fmt.Fprintln(stdout, "[ok  ] metricz reports the cache hit")

	if err := traceLeg(base, spanCol, reqBody, stdout); err != nil {
		return err
	}
	if err := batchLeg(base, first, stdout); err != nil {
		return err
	}
	if err := faultLeg(srv, base, first, reqBody, stdout); err != nil {
		return err
	}
	if err := panicLeg(base, first, reqBody, stdout); err != nil {
		return err
	}
	if err := chaosLeg(stdout); err != nil {
		return err
	}
	if err := storeLeg(tracer, stdout); err != nil {
		return err
	}
	if err := degradeLeg(tracer, stdout); err != nil {
		return err
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Drain(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "[ok  ] drained")
	return nil
}

// traceLeg verifies the tracing path end to end: the pinned Table-1 request
// answers with an X-Schedd-Trace header naming one of the collected roots,
// every traced request so far produced exactly one well-formed span tree
// with the documented stages, all three share the deterministic key half of
// the trace ID, and /statusz folds the span durations into per-stage
// quantiles.
func traceLeg(base string, spanCol *obs.Collector, reqBody []byte, stdout io.Writer) error {
	resp, err := http.Post(base+"/v1/iterate", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	headerID := resp.Header.Get(serve.TraceHeader)
	if resp.StatusCode != http.StatusOK || headerID == "" {
		return fmt.Errorf("trace leg: status %d, %s header %q", resp.StatusCode, serve.TraceHeader, headerID)
	}

	// Spans are emitted when the handler finishes, which can trail the
	// response bytes by a scheduler beat. A trace emits its root first and
	// its "write" stage last, so three write spans mean three complete
	// trees have landed. The spans themselves are deterministic — only
	// their arrival in the collector needs a grace period.
	var all []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		all = all[:0]
		writes := 0
		for _, e := range spanCol.Events() {
			if sp, ok := e.(obs.Span); ok {
				all = append(all, sp)
				if sp.Name == "write" {
					writes++
				}
			}
		}
		if writes >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sum := obs.SummarizeSpans(all)
	if !sum.WellFormed() || sum.Roots != 3 {
		return fmt.Errorf("trace leg: %d well-formed roots for 3 requests (malformed: %v)", sum.Roots, sum.Malformed)
	}

	keyHalves := map[string]bool{}
	headerMatched := false
	var missStages, hitStages map[string]bool
	for _, sp := range all {
		if sp.ParentID != 0 {
			continue
		}
		keyHalves[strings.SplitN(sp.TraceID, "-", 2)[0]] = true
		if sp.TraceID == headerID {
			headerMatched = true
		}
		kids := map[string]bool{}
		for _, k := range all {
			if k.TraceID == sp.TraceID && k.ParentID != 0 {
				kids[k.Name] = true
			}
		}
		if sp.Cache == "miss" {
			missStages = kids
		} else {
			hitStages = kids
		}
	}
	if !headerMatched {
		return fmt.Errorf("trace leg: header trace ID %q matches no collected root", headerID)
	}
	if len(keyHalves) != 1 {
		return fmt.Errorf("trace leg: trace-ID key halves %v, want one shared half for one pinned request", keyHalves)
	}
	for _, name := range []string{"decode", "validate", "queue_wait", "cache_lookup", "compute", "marshal", "write"} {
		if !missStages[name] {
			return fmt.Errorf("trace leg: miss trace lacks the %s stage (has %v)", name, missStages)
		}
	}
	if hitStages == nil || hitStages["compute"] || !hitStages["cache_lookup"] || !hitStages["write"] {
		return fmt.Errorf("trace leg: hit trace stages wrong: %v", hitStages)
	}
	fmt.Fprintln(stdout, "[ok  ] every request traced: well-formed span trees, stable key half, header matches a root")

	resp, err = http.Get(base + "/statusz")
	if err != nil {
		return err
	}
	stBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var st struct {
		RequestsTotal int64   `json:"requests_total"`
		CacheHits     int64   `json:"cache_hits"`
		CacheHitRatio float64 `json:"cache_hit_ratio"`
		LatencyMS     struct {
			Count int `json:"count"`
		} `json:"latency_ms"`
		Stages []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(stBody, &st); err != nil {
		return fmt.Errorf("decoding /statusz: %w (%s)", err, stBody)
	}
	stages := map[string]int{}
	for _, row := range st.Stages {
		stages[row.Name] = row.Count
	}
	switch {
	case st.RequestsTotal != 3 || st.CacheHits != 2:
		return fmt.Errorf("statusz requests/hits = %d/%d, want 3/2: %s", st.RequestsTotal, st.CacheHits, stBody)
	case st.CacheHitRatio < 0.66 || st.CacheHitRatio > 0.67:
		return fmt.Errorf("statusz cache_hit_ratio = %g, want 2/3: %s", st.CacheHitRatio, stBody)
	case st.LatencyMS.Count != 3:
		return fmt.Errorf("statusz latency_ms count = %d, want 3: %s", st.LatencyMS.Count, stBody)
	case stages["compute"] != 1 || stages["cache_lookup"] != 3 || stages["write"] != 3:
		return fmt.Errorf("statusz stage counts %v, want compute=1 cache_lookup=3 write=3: %s", stages, stBody)
	}
	fmt.Fprintln(stdout, "[ok  ] statusz folds the spans into per-stage latency quantiles")
	return nil
}

// batchLeg verifies POST /v1/batch end to end: a mixed batch serves the
// pinned Table-1 item from cache (body byte-identical to the singleton
// response minus its trailing newline) while isolating a bad neighbor's 422
// inside the envelope, an identical single-item batch replays
// byte-identically (the whole-envelope cache returning exactly what
// assembly produced), and the batch counters conserve.
func batchLeg(base string, want []byte, stdout io.Writer) error {
	req := serve.Request{
		ETC:       experiments.MinMinExampleETC().Values(),
		Heuristic: "min-min",
		Ties:      "det",
		Seed:      1,
	}
	bad := req
	bad.Heuristic = "nope"
	mixed, err := json.Marshal(serve.BatchRequest{Items: []serve.BatchItem{
		{Endpoint: "iterate", Request: req},
		{Endpoint: "iterate", Request: bad},
	}})
	if err != nil {
		return err
	}
	env, err := postBatch(base, mixed)
	if err != nil {
		return err
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(env, &br); err != nil {
		return fmt.Errorf("batch leg: decoding envelope: %w (%s)", err, env)
	}
	wantItem := bytes.TrimSuffix(want, []byte("\n"))
	if len(br.Results) != 2 {
		return fmt.Errorf("batch leg: %d results, want 2", len(br.Results))
	}
	if br.Results[0].Status != http.StatusOK || !bytes.Equal(br.Results[0].Body, wantItem) || br.Results[0].Cache != "hit" {
		return fmt.Errorf("batch leg: item 0 status %d cache %q, want the cached Table-1 bytes", br.Results[0].Status, br.Results[0].Cache)
	}
	var er serve.ErrorResponse
	if br.Results[1].Status != http.StatusUnprocessableEntity ||
		json.Unmarshal(br.Results[1].Body, &er) != nil || er.Error.Code != serve.CodeValidationFailed {
		return fmt.Errorf("batch leg: item 1 status %d body %s, want an isolated 422 validation_failed", br.Results[1].Status, br.Results[1].Body)
	}
	fmt.Fprintln(stdout, "[ok  ] /v1/batch serves the pinned item from cache and isolates a bad neighbor's 422")

	ident, err := json.Marshal(serve.BatchRequest{Items: []serve.BatchItem{{Endpoint: "iterate", Request: req}}})
	if err != nil {
		return err
	}
	envA, err := postBatch(base, ident)
	if err != nil {
		return err
	}
	envB, err := postBatch(base, ident)
	if err != nil {
		return err
	}
	if !bytes.Equal(envA, envB) {
		return fmt.Errorf("batch leg: identical batch replay differs:\n%s\n%s", envA, envB)
	}
	counters, err := counterSnapshot(base)
	if err != nil {
		return err
	}
	if counters["serve.batch_requests_total"] != 3 || counters["serve.batch_items_total"] != 4 {
		return fmt.Errorf("batch leg: batch counters %d requests / %d items, want 3/4",
			counters["serve.batch_requests_total"], counters["serve.batch_items_total"])
	}
	fmt.Fprintln(stdout, "[ok  ] identical batch replay is byte-identical; batch counters conserve")
	return nil
}

func postBatch(base string, body []byte) ([]byte, error) {
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/batch: status %d: %s", resp.StatusCode, respBody)
	}
	return respBody, nil
}

// faultLeg replays the pinned Table-1 request through the deterministic
// fault injector with the resilient client: injected 503s, dropped
// connections and truncated bodies must cost retries, never correctness —
// every recovered body is byte-identical to the cleanly computed one.
// Injector, server and client share one metrics registry, so the clean
// listener's /metricz (cleanBase) also proves faults were actually injected
// and retries actually taken.
func faultLeg(srv *serve.Server, cleanBase string, want, reqBody []byte, stdout io.Writer) error {
	spec, err := faults.Parse("seed=5,latency=0.2:2ms,reject=0.25:503:1,drop=0.2,truncate=0.2")
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: faults.New(spec, srv.Handler(), srv.Metrics())}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	cl := client.New(client.Options{
		MaxRetries:  12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond, // caps the injector's Retry-After: 1s too
		Timeout:     2 * time.Second,
		Seed:        1,
		// The injector never yields 12 consecutive faults here, but keep the
		// breaker from fast-failing a replay mid-leg regardless.
		BreakerThreshold: 1000,
		Metrics:          srv.Metrics(),
	})
	const replays = 16
	for i := 1; i <= replays; i++ {
		resp, err := cl.Post(context.Background(), base+"/v1/iterate", reqBody)
		if err != nil {
			return fmt.Errorf("fault leg replay %d/%d: %w", i, replays, err)
		}
		if !bytes.Equal(resp.Body, want) {
			return fmt.Errorf("fault leg replay %d/%d: recovered body differs from the clean response", i, replays)
		}
	}
	fmt.Fprintf(stdout, "[ok  ] %d fault-injected replays recovered byte-identical responses\n", replays)

	counters, err := counterSnapshot(cleanBase)
	if err != nil {
		return err
	}
	for _, name := range []string{
		"faults.injected_total",
		"faults.reject_total",
		"faults.drop_total",
		"faults.truncate_total",
		"client.retries_total",
	} {
		if counters[name] <= 0 {
			return fmt.Errorf("/metricz %s = %d, want > 0 (fault leg did not exercise it)", name, counters[name])
		}
	}
	fmt.Fprintf(stdout, "[ok  ] metricz reports %d injected faults (%d rejected, %d dropped, %d truncated) and %d client retries\n",
		counters["faults.injected_total"], counters["faults.reject_total"],
		counters["faults.drop_total"], counters["faults.truncate_total"],
		counters["client.retries_total"])

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("fault leg shutdown: %w", err)
	}
	return nil
}

// panicLeg proves worker-level panic isolation on the live daemon: a
// request carrying the chaos sentinel seed panics inside the worker, the
// client receives a structured 500 with code "panic" (and no panic detail),
// serve.panics_total increments, and the daemon keeps serving the pinned
// Table-1 request byte-identically from cache. Plain http.Post keeps the
// fault leg's seeded decision streams untouched.
func panicLeg(base string, want, reqBody []byte, stdout io.Writer) error {
	panicBody, err := json.Marshal(serve.Request{
		ETC:       experiments.MinMinExampleETC().Values(),
		Heuristic: "min-min",
		Ties:      "det",
		Seed:      chaos.PanicSeed,
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/iterate", "application/json", bytes.NewReader(panicBody))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusInternalServerError {
		return fmt.Errorf("panic leg: status %d, want 500: %s", resp.StatusCode, body)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return fmt.Errorf("panic leg: decoding error envelope: %w (%s)", err, body)
	}
	if er.Error.Code != serve.CodePanic {
		return fmt.Errorf("panic leg: error code %q, want %q", er.Error.Code, serve.CodePanic)
	}
	if strings.Contains(er.Error.Message, "deliberate") {
		return fmt.Errorf("panic leg: panic detail leaked into the response: %q", er.Error.Message)
	}
	counters, err := counterSnapshot(base)
	if err != nil {
		return err
	}
	if counters["serve.panics_total"] != 1 {
		return fmt.Errorf("panic leg: serve.panics_total = %d, want 1", counters["serve.panics_total"])
	}
	after, hdr, err := postIterate(base, reqBody)
	if err != nil {
		return fmt.Errorf("panic leg: pinned request after panic: %w", err)
	}
	if hdr != "hit" {
		return fmt.Errorf("panic leg: post-panic X-Schedd-Cache %q, want hit", hdr)
	}
	if !bytes.Equal(after, want) {
		return fmt.Errorf("panic leg: post-panic cached body differs from the clean response")
	}
	fmt.Fprintln(stdout, "[ok  ] deliberate panic isolated: structured 500, panics_total=1, cache intact")
	return nil
}

// chaosLeg replays one builtin chaos scenario in-process and requires every
// harness invariant to hold — the end-to-end hardening smoke.
func chaosLeg(stdout io.Writer) error {
	sc, err := chaos.ByName("breaker-trip")
	if err != nil {
		return err
	}
	rep, err := chaos.Run(sc)
	if err != nil {
		return fmt.Errorf("chaos leg: %w", err)
	}
	if !rep.Pass {
		for _, inv := range rep.Invariants {
			if !inv.OK {
				return fmt.Errorf("chaos leg: invariant %s violated: %s", inv.Name, inv.Detail)
			}
		}
		return fmt.Errorf("chaos leg: scenario %s failed", rep.Scenario)
	}
	fmt.Fprintf(stdout, "[ok  ] chaos scenario %s: %d invariants hold\n", rep.Scenario, len(rep.Invariants))
	return nil
}

// storeLeg proves the crash-safe disk result tier across a kill/restart: a
// dedicated server over a fresh -store directory computes the pinned
// Table-1 body, shuts down (drain flushes the write-behind queue, the store
// closes), and a restarted server over the same directory answers the same
// request byte-identically with X-Schedd-Cache: disk, then serves the
// repeat as a memory hit (promotion). Both servers share the selfcheck's
// tracer, so the restart flow's disk_lookup spans land in -trace-out
// streams and the pinned schedtrace golden.
func storeLeg(tracer *obs.Tracer, stdout io.Writer) error {
	dir, err := os.MkdirTemp("", "schedd-selfcheck-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reqBody, err := json.Marshal(serve.Request{
		ETC:       experiments.MinMinExampleETC().Values(),
		Heuristic: "min-min",
		Ties:      "det",
		Seed:      1,
	})
	if err != nil {
		return err
	}

	// runServer is one daemon lifetime over the shared store directory:
	// open the store, serve f's requests, shut down, drain (flushing disk
	// writes), close the store.
	runServer := func(f func(base string) error) error {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return fmt.Errorf("store leg: %w", err)
		}
		srv := serve.NewServer(serve.Options{Store: st, Tracer: tracer})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.Close()
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		ferr := f("http://" + ln.Addr().String())
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil && ferr == nil {
			ferr = fmt.Errorf("store leg shutdown: %w", err)
		}
		if err := srv.Drain(sctx); err != nil && ferr == nil {
			ferr = fmt.Errorf("store leg drain: %w", err)
		}
		if err := st.Close(); err != nil && ferr == nil {
			ferr = fmt.Errorf("store leg: %w", err)
		}
		return ferr
	}

	var first []byte
	if err := runServer(func(base string) error {
		body, hdr, err := postIterate(base, reqBody)
		if err != nil {
			return fmt.Errorf("store leg: %w", err)
		}
		if hdr != "miss" {
			return fmt.Errorf("store leg: first request X-Schedd-Cache %q, want miss", hdr)
		}
		first = body
		return nil
	}); err != nil {
		return err
	}
	if err := runServer(func(base string) error {
		second, hdr, err := postIterate(base, reqBody)
		if err != nil {
			return fmt.Errorf("store leg restart: %w", err)
		}
		if hdr != "disk" {
			return fmt.Errorf("store leg: post-restart X-Schedd-Cache %q, want disk", hdr)
		}
		if !bytes.Equal(second, first) {
			return fmt.Errorf("store leg: disk hit differs from the pre-restart body")
		}
		third, hdr, err := postIterate(base, reqBody)
		if err != nil {
			return fmt.Errorf("store leg repeat: %w", err)
		}
		if hdr != "hit" {
			return fmt.Errorf("store leg: promoted repeat X-Schedd-Cache %q, want hit", hdr)
		}
		if !bytes.Equal(third, first) {
			return fmt.Errorf("store leg: promoted hit differs from the pre-restart body")
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "[ok  ] restart recovery: disk hit byte-identical across kill/restart, then promoted to a memory hit")
	return nil
}

// degradeLeg proves graceful degradation end to end over HTTP: the disk
// tier sits on a fault filesystem that fails every read while enabled, and
// the daemon must ride the whole health arc — healthy → offline (read
// errors) → gated consults → read-probe recovery → degraded → write-probe
// recovery → healthy — without one client-visible error or changed byte.
// The LRU is disabled so every request exercises the disk path.
func degradeLeg(tracer *obs.Tracer, stdout io.Writer) error {
	dir, err := os.MkdirTemp("", "schedd-selfcheck-degrade-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// waitFor synchronizes the check with the asynchronous write-behind
	// goroutine; wall clock shapes only when the leg looks, never behavior.
	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("degrade leg: timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	body := func(seed uint64) ([]byte, error) {
		return json.Marshal(serve.Request{
			ETC:       experiments.MinMinExampleETC().Values(),
			Heuristic: "min-min",
			Ties:      "det",
			Seed:      seed,
		})
	}
	warmBody, err := body(1)
	if err != nil {
		return err
	}

	ffs := store.NewFaultFS(nil, store.FaultSpec{Seed: 1, ReadErrP: 1})
	ffs.SetEnabled(false)
	st, err := store.Open(dir, store.Options{FS: ffs, ProbeAfter: 2})
	if err != nil {
		return fmt.Errorf("degrade leg: %w", err)
	}
	srv := serve.NewServer(serve.Options{Store: st, CacheEntries: -1, Tracer: tracer})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	legErr := func() error {
		// Healthy: compute, flush behind, serve from disk.
		first, hdr, err := postIterate(base, warmBody)
		if err != nil {
			return fmt.Errorf("degrade leg: %w", err)
		}
		if hdr != "miss" {
			return fmt.Errorf("degrade leg: warm X-Schedd-Cache %q, want miss", hdr)
		}
		if err := waitFor("write-behind flush", func() bool { return st.Len() == 1 }); err != nil {
			return err
		}
		if _, hdr, err = postIterate(base, warmBody); err != nil {
			return fmt.Errorf("degrade leg: %w", err)
		} else if hdr != "disk" {
			return fmt.Errorf("degrade leg: healthy repeat X-Schedd-Cache %q, want disk", hdr)
		}

		// Storm: the read fails, the response falls through to compute
		// byte-identically, the tier goes offline.
		ffs.SetEnabled(true)
		b, hdr, err := postIterate(base, warmBody)
		if err != nil {
			return fmt.Errorf("degrade leg: %w", err)
		}
		if hdr != "miss" || !bytes.Equal(b, first) {
			return fmt.Errorf("degrade leg: faulted post cache %q, want byte-identical miss fallthrough", hdr)
		}
		if got := st.HealthState(); got != "offline" {
			return fmt.Errorf("degrade leg: health %q after read storm, want offline", got)
		}
		// Offline: the next consult is gated — no disk I/O at all.
		if b, _, err = postIterate(base, warmBody); err != nil {
			return fmt.Errorf("degrade leg: %w", err)
		} else if !bytes.Equal(b, first) {
			return fmt.Errorf("degrade leg: gated post not byte-identical")
		}

		// Repaired: the next consult is the read probe (ProbeAfter=2) and
		// serves the stored body; offline → degraded.
		ffs.SetEnabled(false)
		if _, hdr, err = postIterate(base, warmBody); err != nil {
			return fmt.Errorf("degrade leg: %w", err)
		} else if hdr != "disk" {
			return fmt.Errorf("degrade leg: probe post X-Schedd-Cache %q, want disk", hdr)
		}
		if got := st.HealthState(); got != "degraded" {
			return fmt.Errorf("degrade leg: health %q after read probe, want degraded (writes unproven)", got)
		}

		// Degraded: fresh bodies drive the write-probe ladder; the first
		// append is dropped (counted) and the probe append recovers the tier.
		for seed := uint64(2); seed <= 3; seed++ {
			fresh, err := body(seed)
			if err != nil {
				return err
			}
			if _, _, err := postIterate(base, fresh); err != nil {
				return fmt.Errorf("degrade leg: %w", err)
			}
		}
		if err := waitFor("write-probe recovery", func() bool { return st.Health() == store.Healthy }); err != nil {
			return err
		}

		counters, err := counterSnapshot(base)
		if err != nil {
			return fmt.Errorf("degrade leg: %w", err)
		}
		if counters["serve.disk_skipped"] != 1 || counters["serve.disk_write_drops"] < 1 || counters["serve.disk_errors"] < 1 {
			return fmt.Errorf("degrade leg: counters skipped=%d drops=%d errors=%d, want 1/>=1/>=1",
				counters["serve.disk_skipped"], counters["serve.disk_write_drops"], counters["serve.disk_errors"])
		}
		resp, err := http.Get(base + "/statusz")
		if err != nil {
			return err
		}
		stBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var status struct {
			Disk *struct {
				Health     string `json:"health"`
				Skipped    int64  `json:"skipped"`
				WriteDrops int64  `json:"write_drops"`
			} `json:"disk"`
		}
		if err := json.Unmarshal(stBody, &status); err != nil || status.Disk == nil {
			return fmt.Errorf("degrade leg: statusz disk section missing: %v (%s)", err, stBody)
		}
		if status.Disk.Health != "healthy" || status.Disk.Skipped != 1 || status.Disk.WriteDrops < 1 {
			return fmt.Errorf("degrade leg: statusz disk %+v, want healthy with 1 skipped and >=1 drops", status.Disk)
		}
		return nil
	}()

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && legErr == nil {
		legErr = fmt.Errorf("degrade leg shutdown: %w", err)
	}
	if err := srv.Drain(sctx); err != nil && legErr == nil {
		legErr = fmt.Errorf("degrade leg drain: %w", err)
	}
	if err := st.Close(); err != nil && legErr == nil {
		legErr = fmt.Errorf("degrade leg: %w", err)
	}
	if legErr != nil {
		return legErr
	}
	fmt.Fprintln(stdout, "[ok  ] graceful degradation: offline disk never client-visible — byte-identical fallthrough, gated consults, probe recovery to healthy")
	fmt.Fprintln(stdout, "[ok  ] statusz reports the disk health arc (healthy, 1 gated consult, counted write drops)")
	return nil
}

// counterSnapshot fetches /metricz and indexes the counters by name.
func counterSnapshot(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("decoding /metricz: %w", err)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	return counters, nil
}

func postIterate(base string, body []byte) (respBody []byte, cacheHeader string, err error) {
	resp, err := http.Post(base+"/v1/iterate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("/v1/iterate: status %d: %s", resp.StatusCode, respBody)
	}
	return respBody, resp.Header.Get("X-Schedd-Cache"), nil
}

func expectStatus(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
