package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// TestAllScenariosPass is the same smoke leg scripts/check.sh runs: every
// builtin scenario replays clean and the process would exit 0.
func TestAllScenariosPass(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "all"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	if strings.Contains(out, "[FAIL]") {
		t.Fatalf("invariant failure in output:\n%s", out)
	}
	if !strings.Contains(out, "every invariant ok") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	for _, sc := range chaos.Builtin() {
		if !strings.Contains(out, "scenario "+sc.Name) {
			t.Fatalf("scenario %s missing from output:\n%s", sc.Name, out)
		}
	}
}

// TestStdoutDeterministic pins the CLI half of the determinism promise:
// two runs of the same scenario and seed produce byte-identical stdout,
// including the embedded JSON verdict.
func TestStdoutDeterministic(t *testing.T) {
	var runs [][]byte
	for i := 0; i < 2; i++ {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-scenario", "storm", "-json"}, &stdout, &stderr); err != nil {
			t.Fatalf("run %d: %v\nstderr: %s", i, err, stderr.String())
		}
		runs = append(runs, stdout.Bytes())
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("stdout differs across identical runs:\n%s\nvs\n%s", runs[0], runs[1])
	}
}

func TestReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "breaker-trip", "-report", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep chaos.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Scenario != "breaker-trip" || !rep.Pass {
		t.Fatalf("report %+v, want breaker-trip pass", rep)
	}
}

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, sc := range chaos.Builtin() {
		if !strings.Contains(stdout.String(), sc.Name) {
			t.Fatalf("-list missing %s:\n%s", sc.Name, stdout.String())
		}
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "available") {
		t.Fatalf("unknown scenario error %v, want available-list error", err)
	}

	stderr.Reset()
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-scenario") {
		t.Fatalf("flag error did not print usage to stderr:\n%s", stderr.String())
	}

	stderr.Reset()
	if err := run([]string{"extra"}, &stdout, &stderr); err == nil {
		t.Fatal("positional argument accepted")
	}

	// The seed override must not collide with the harness's panic sentinel.
	if err := run([]string{"-scenario", "storm", "-seed", strconv.FormatUint(chaos.PanicSeed, 10)}, &stdout, &stderr); err == nil {
		t.Fatal("PanicSeed accepted as a scenario seed override")
	}
}
