// Command schedchaos replays the deterministic chaos scenarios of
// internal/chaos against an in-process serve stack and machine-checks the
// harness invariants: documented-or-byte-identical responses, metrics
// conservation, queue/in-flight quiescence, goroutine-leak freedom, legal
// breaker transitions, panic accounting and full fault-free recovery.
//
// Cluster scenarios (internal/chaos RunCluster) drive a schedgw gateway
// over several in-process backends through backend kills, rejoins and
// fault storms, checking on top that every response stays byte-identical
// to a single instance's and that routing obeys rendezvous order.
//
// Every scenario is seeded and replayed serially, so the verdict report is
// byte-identical across runs of the same scenario and seed. The exit code
// is the contract for CI: 0 only if every invariant of every selected
// scenario holds.
//
// Usage:
//
//	schedchaos [-scenario all|name] [-seed N] [-list] [-json] [-report file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chaos"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario   = fs.String("scenario", "all", "scenario to replay: all or a name from -list")
		seed       = fs.Uint64("seed", 0, "override the scenario seed (0 keeps the pinned seed)")
		list       = fs.Bool("list", false, "list builtin scenarios and exit")
		jsonOut    = fs.Bool("json", false, "print the full JSON verdict report(s) to stdout")
		reportPath = fs.String("report", "", "write the JSON verdict report(s) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *list {
		for _, sc := range chaos.Builtin() {
			fmt.Fprintf(stdout, "%-20s seed %-3d %s\n", sc.Name, sc.Seed, sc.Description)
		}
		for _, sc := range chaos.BuiltinCluster() {
			fmt.Fprintf(stdout, "%-20s seed %-3d [cluster, %d backends] %s\n", sc.Name, sc.Seed, sc.Backends, sc.Description)
		}
		for _, sc := range chaos.BuiltinRestart() {
			fmt.Fprintf(stdout, "%-20s seed %-3d [restart, disk tier] %s\n", sc.Name, sc.Seed, sc.Description)
		}
		for _, sc := range chaos.BuiltinDisk() {
			fmt.Fprintf(stdout, "%-20s seed %-3d [disk tier, fault fs] %s\n", sc.Name, sc.Seed, sc.Description)
		}
		return nil
	}

	// Single-instance and cluster scenarios share the namespace and the
	// report shape; a runnable pairs a scenario's header data with its
	// harness entry point.
	type runnable struct {
		name, description string
		seed              uint64
		phases, requests  int
		run               func() (*chaos.Report, error)
	}
	singleRunnable := func(sc chaos.Scenario) runnable {
		if *seed != 0 {
			sc.Seed = *seed
		}
		requests := 0
		for _, ph := range sc.Phases {
			requests += ph.Requests
		}
		return runnable{sc.Name, sc.Description, sc.Seed, len(sc.Phases), requests,
			func() (*chaos.Report, error) { return chaos.Run(sc) }}
	}
	clusterRunnable := func(sc chaos.ClusterScenario) runnable {
		if *seed != 0 {
			sc.Seed = *seed
		}
		requests := 0
		for _, ph := range sc.Phases {
			requests += ph.Requests
		}
		return runnable{sc.Name, sc.Description, sc.Seed, len(sc.Phases), requests,
			func() (*chaos.Report, error) { return chaos.RunCluster(sc) }}
	}
	restartRunnable := func(sc chaos.RestartScenario) runnable {
		if *seed != 0 {
			sc.Seed = *seed
		}
		// Two lifetimes of miss+replay over the distinct bodies.
		return runnable{sc.Name, sc.Description, sc.Seed, 2, 4 * sc.Distinct,
			func() (*chaos.Report, error) { return chaos.RunRestart(sc) }}
	}
	diskRunnable := func(sc chaos.DiskScenario) runnable {
		if *seed != 0 {
			sc.Seed = *seed
		}
		// warm + storm/full + resume/expand + readback.
		requests := 2*sc.Warm + sc.Resume + 2
		if sc.DiskFull {
			requests += 2 * sc.Storm
		} else {
			requests += sc.Rounds*sc.Warm + sc.Storm + 2*sc.ProbeAfter
		}
		return runnable{sc.Name, sc.Description, sc.Seed, 4, requests,
			func() (*chaos.Report, error) { return chaos.RunDisk(sc) }}
	}

	var selected []runnable
	switch {
	case *scenario == "all":
		for _, sc := range chaos.Builtin() {
			selected = append(selected, singleRunnable(sc))
		}
		for _, sc := range chaos.BuiltinCluster() {
			selected = append(selected, clusterRunnable(sc))
		}
		for _, sc := range chaos.BuiltinRestart() {
			selected = append(selected, restartRunnable(sc))
		}
		for _, sc := range chaos.BuiltinDisk() {
			selected = append(selected, diskRunnable(sc))
		}
	default:
		if sc, err := chaos.ByName(*scenario); err == nil {
			selected = []runnable{singleRunnable(sc)}
		} else if csc, cerr := chaos.ClusterByName(*scenario); cerr == nil {
			selected = []runnable{clusterRunnable(csc)}
		} else if rsc, rerr := chaos.RestartByName(*scenario); rerr == nil {
			selected = []runnable{restartRunnable(rsc)}
		} else if dsc, derr := chaos.DiskByName(*scenario); derr == nil {
			selected = []runnable{diskRunnable(dsc)}
		} else {
			return err
		}
	}

	var reports []*chaos.Report
	failed := 0
	for _, r := range selected {
		rep, err := r.run()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "schedchaos: scenario %s (seed %d): %d phases, %d requests — %s\n",
			rep.Scenario, rep.Seed, r.phases, r.requests, r.description)
		for _, inv := range rep.Invariants {
			tag := "[ok  ]"
			if !inv.OK {
				tag = "[FAIL]"
			}
			fmt.Fprintf(stdout, "%s %s: %s\n", tag, inv.Name, inv.Detail)
		}
		if !rep.Pass {
			failed++
		}
		reports = append(reports, rep)
	}

	if *jsonOut || *reportPath != "" {
		body, err := marshalReports(reports)
		if err != nil {
			return err
		}
		if *jsonOut {
			if _, err := stdout.Write(body); err != nil {
				return err
			}
		}
		if *reportPath != "" {
			if err := os.WriteFile(*reportPath, body, 0o644); err != nil {
				return err
			}
		}
	}

	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) violated invariants", failed, len(selected))
	}
	fmt.Fprintf(stdout, "schedchaos: %d scenario(s), every invariant ok\n", len(selected))
	return nil
}

// marshalReports renders one report as a single object and several as an
// array — indented, deterministic, trailing newline.
func marshalReports(reports []*chaos.Report) ([]byte, error) {
	if len(reports) == 1 {
		return reports[0].JSON()
	}
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
