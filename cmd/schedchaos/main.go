// Command schedchaos replays the deterministic chaos scenarios of
// internal/chaos against an in-process serve stack and machine-checks the
// harness invariants: documented-or-byte-identical responses, metrics
// conservation, queue/in-flight quiescence, goroutine-leak freedom, legal
// breaker transitions, panic accounting and full fault-free recovery.
//
// Every scenario is seeded and replayed serially, so the verdict report is
// byte-identical across runs of the same scenario and seed. The exit code
// is the contract for CI: 0 only if every invariant of every selected
// scenario holds.
//
// Usage:
//
//	schedchaos [-scenario all|name] [-seed N] [-list] [-json] [-report file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chaos"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario   = fs.String("scenario", "all", "scenario to replay: all or a name from -list")
		seed       = fs.Uint64("seed", 0, "override the scenario seed (0 keeps the pinned seed)")
		list       = fs.Bool("list", false, "list builtin scenarios and exit")
		jsonOut    = fs.Bool("json", false, "print the full JSON verdict report(s) to stdout")
		reportPath = fs.String("report", "", "write the JSON verdict report(s) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *list {
		for _, sc := range chaos.Builtin() {
			fmt.Fprintf(stdout, "%-16s seed %-3d %s\n", sc.Name, sc.Seed, sc.Description)
		}
		return nil
	}

	var scenarios []chaos.Scenario
	if *scenario == "all" {
		scenarios = chaos.Builtin()
	} else {
		sc, err := chaos.ByName(*scenario)
		if err != nil {
			return err
		}
		scenarios = []chaos.Scenario{sc}
	}
	if *seed != 0 {
		for i := range scenarios {
			scenarios[i].Seed = *seed
		}
	}

	var reports []*chaos.Report
	failed := 0
	for _, sc := range scenarios {
		rep, err := chaos.Run(sc)
		if err != nil {
			return err
		}
		requests := 0
		for _, ph := range sc.Phases {
			requests += ph.Requests
		}
		fmt.Fprintf(stdout, "schedchaos: scenario %s (seed %d): %d phases, %d requests — %s\n",
			rep.Scenario, rep.Seed, len(sc.Phases), requests, sc.Description)
		for _, inv := range rep.Invariants {
			tag := "[ok  ]"
			if !inv.OK {
				tag = "[FAIL]"
			}
			fmt.Fprintf(stdout, "%s %s: %s\n", tag, inv.Name, inv.Detail)
		}
		if !rep.Pass {
			failed++
		}
		reports = append(reports, rep)
	}

	if *jsonOut || *reportPath != "" {
		body, err := marshalReports(reports)
		if err != nil {
			return err
		}
		if *jsonOut {
			if _, err := stdout.Write(body); err != nil {
				return err
			}
		}
		if *reportPath != "" {
			if err := os.WriteFile(*reportPath, body, 0o644); err != nil {
				return err
			}
		}
	}

	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) violated invariants", failed, len(scenarios))
	}
	fmt.Fprintf(stdout, "schedchaos: %d scenario(s), every invariant ok\n", len(scenarios))
	return nil
}

// marshalReports renders one report as a single object and several as an
// array — indented, deterministic, trailing newline.
func marshalReports(reports []*chaos.Report) ([]byte, error) {
	if len(reports) == 1 {
		return reports[0].JSON()
	}
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
