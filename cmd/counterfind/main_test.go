package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

func TestFindsSufferageDeterministic(t *testing.T) {
	out, err := runCLI(t, "-heuristic", "sufferage", "-deterministic", "-attempts", "300000", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "counterexample for sufferage with deterministic ties") {
		t.Fatalf("no counterexample reported:\n%s", out)
	}
	if !strings.Contains(out, "INCREASED") {
		t.Fatalf("makespan increase not reported:\n%s", out)
	}
}

func TestImpossibleSearchReportsTheorem(t *testing.T) {
	out, err := runCLI(t, "-heuristic", "mct", "-deterministic", "-attempts", "500")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no counterexample") {
		t.Fatalf("should exhaust budget:\n%s", out)
	}
	if !strings.Contains(out, "paper proves") {
		t.Fatalf("theorem note missing:\n%s", out)
	}
}

func TestRandomTieSearchReportsTiePath(t *testing.T) {
	out, err := runCLI(t, "-heuristic", "met", "-attempts", "100000", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tie path (iterative phase)") {
		t.Fatalf("tie path missing for a random-tie counterexample:\n%s", out)
	}
}

func TestHalfGridFlag(t *testing.T) {
	// Just exercise the half-integer generator path with a small budget.
	if _, err := runCLI(t, "-heuristic", "sufferage", "-deterministic", "-half", "-maxvalue", "12", "-attempts", "20000"); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCLI(t, "-heuristic", "bogus"); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := runCLI(t, "-notaflag"); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestShrinkFlag(t *testing.T) {
	out, err := runCLI(t, "-heuristic", "sufferage", "-deterministic", "-attempts", "300000", "-seed", "7", "-shrink")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "INCREASED") {
		t.Fatalf("shrunken counterexample lost the increase:\n%s", out)
	}
}
