// Command counterfind searches random small-value workloads for ETC
// matrices on which the iterative technique makes a heuristic's makespan
// worse — the pathology the paper demonstrates by example. It prints the
// found matrix, the tie path (if random ties were needed), and the
// before/after completion times.
//
// Usage:
//
//	counterfind -heuristic sufferage -deterministic       # SWA/KPB/Sufferage pathology
//	counterfind -heuristic min-min                        # random-tie pathology
//	counterfind -heuristic mct -deterministic             # provably impossible: exhausts budget
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/counterexample"
	"repro/internal/heuristics"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "counterfind:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("counterfind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("heuristic", "sufferage", "heuristic: "+strings.Join(heuristics.Names(), ", "))
		det      = fs.Bool("deterministic", false, "require the pathology under deterministic ties")
		tasks    = fs.Int("tasks", 5, "tasks per candidate")
		machines = fs.Int("machines", 3, "machines per candidate")
		maxVal   = fs.Int("maxvalue", 6, "entries drawn from integers 1..maxvalue")
		half     = fs.Bool("half", false, "use half-integer grid 0.5..maxvalue/2 instead")
		attempts = fs.Int64("attempts", 1_000_000, "candidate budget")
		seed     = fs.Uint64("seed", 1, "search seed")
		shrink   = fs.Bool("shrink", false, "minimise the found matrix (drop tasks, reduce entries)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if _, err := heuristics.ByName(*name, 0); err != nil {
		return err
	}
	target := counterexample.Target{
		Heuristic: func() heuristics.Heuristic {
			h, _ := heuristics.ByName(*name, *seed)
			return h
		},
		DeterministicOnly: *det,
	}
	values := counterexample.IntGrid(*maxVal)
	if *half {
		values = counterexample.HalfGrid(*maxVal)
	}
	gen := counterexample.GridGenerator(*tasks, *machines, values)

	res, ok := counterexample.Search(target, gen, *attempts, *seed)
	if !ok {
		fmt.Fprintf(stdout, "no counterexample in %d candidates (%s, %s ties, %dx%d)\n",
			*attempts, *name, tieLabel(*det), *tasks, *machines)
		if *det {
			switch *name {
			case "met", "mct", "min-min":
				fmt.Fprintln(stdout, "note: the paper proves this search can never succeed for this heuristic")
			}
		}
		return nil
	}
	matrix := res.Matrix
	if *shrink {
		step := 1.0
		if *half {
			step = 0.5
		}
		small, err := counterexample.Shrink(matrix, target, step)
		if err != nil {
			return err
		}
		matrix = small
		// Recompute the trace on the shrunk matrix.
		in, err := sched.NewInstance(matrix, nil)
		if err != nil {
			return err
		}
		h, _ := heuristics.ByName(*name, *seed)
		path, ok, err := target.Matches(in, h)
		if err != nil || !ok {
			return fmt.Errorf("shrunk matrix no longer matches (internal error): %v", err)
		}
		res.Path = *path
	}
	tr := res.Path.Trace
	fmt.Fprintf(stdout, "counterexample for %s with %s ties (after %d candidates):\n\n",
		*name, tieLabel(*det), res.Attempts)
	fmt.Fprint(stdout, matrix)
	if len(res.Path.Script) > 0 {
		fmt.Fprintf(stdout, "\ntie path (iterative phase): %v\n", res.Path.Script)
	}
	fmt.Fprintf(stdout, "\noriginal completion times:  %v\n", tr.Iterations[0].Completion)
	fmt.Fprintf(stdout, "final completion times:     %v\n", tr.FinalCompletion)
	fmt.Fprintf(stdout, "makespan: %.4g -> %.4g (INCREASED)\n", tr.OriginalMakespan(), tr.FinalMakespan())
	return nil
}

func tieLabel(det bool) string {
	if det {
		return "deterministic"
	}
	return "random"
}
