// Command schedtrace analyzes a span JSONL stream written by
// schedd -trace-out or schedload -trace-out: it verifies the stream is
// structurally well-formed (exactly one root span per trace, no orphaned
// parent links or duplicate span IDs, no stage extending past its root) and
// prints a per-stage breakdown.
//
// Usage:
//
//	schedtrace [-counts] [-json] spans.jsonl   (or - for stdin)
//
// The default table includes wall-clock duration quantiles, observational
// only. With -counts those columns are omitted, leaving only fields that
// are deterministic in the request stream — the form golden files and
// scripts/check.sh pin. Non-span lines (e.g. access-log records sharing the
// sink file) are ignored. A malformed stream renders its violations and
// exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		counts  = fs.Bool("counts", false, "omit the wall-clock duration columns (deterministic output for goldens)")
		jsonOut = fs.Bool("json", false, "emit the summary as JSON instead of the table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one span JSONL file (or - for stdin)")
	}
	var r io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	spans, err := obs.ReadSpans(r)
	if err != nil {
		return err
	}
	sum := obs.SummarizeSpans(spans)
	if *jsonOut {
		body, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", body)
	} else {
		sum.Render(stdout, !*counts)
	}
	if !sum.WellFormed() {
		return fmt.Errorf("span stream malformed (%d violations)", len(sum.Malformed))
	}
	return nil
}
