package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestCountsGolden pins the -counts rendering of the pinned fixture stream:
// with the wall-clock columns omitted, the output is a pure function of the
// span stream, so the golden file holds byte for byte. The fixture
// interleaves request_done lines to pin that non-span records are skipped.
func TestCountsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-counts", "testdata/spans.jsonl"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	want, err := os.ReadFile("testdata/counts.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output differs from testdata/counts.golden:\n got:\n%s\nwant:\n%s", stdout.Bytes(), want)
	}
}

// TestMalformedStreamFails pins the error contract: a structurally broken
// stream renders its violations and returns an error.
func TestMalformedStreamFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-counts", "testdata/malformed.jsonl"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v, want a malformed-stream error", err)
	}
	for _, want := range []string{
		"MALFORMED: trace 00000000000000bb-00000001 span 2 (decode): parent 9 not in trace",
		"MALFORMED: trace 00000000000000bb-00000002 has 0 root spans, want exactly 1",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestJSONOutput checks -json emits the summary structure.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-json", "testdata/spans.jsonl"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var sum struct {
		Traces int `json:"traces"`
		Roots  int `json:"roots"`
		Spans  int `json:"spans"`
		Stages []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if sum.Traces != 2 || sum.Roots != 2 || sum.Spans != 13 {
		t.Fatalf("traces/roots/spans = %d/%d/%d, want 2/2/13", sum.Traces, sum.Roots, sum.Spans)
	}
	if len(sum.Stages) != 8 || sum.Stages[0].Name != "cache_lookup" {
		t.Fatalf("stages wrong: %+v", sum.Stages)
	}
}

// TestUsageErrors pins the flag/arg error contract.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("run with no file: want error")
	}
	if err := run([]string{"testdata/nope.jsonl"}, &stdout, &stderr); err == nil {
		t.Fatal("run with missing file: want error")
	}
}
