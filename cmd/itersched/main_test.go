package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCSV writes a small ETC matrix to a temp file and returns its path.
func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "etc.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

const smallETC = "4,9,9\n9,2,2\n9,9,3\n"

func TestRunsDeterministic(t *testing.T) {
	path := writeCSV(t, smallETC)
	out, err := runCLI(t, "-etc", path, "-heuristic", "mct")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"heuristic mct, 3 tasks, 3 machines",
		"--- iteration 0 (original mapping)",
		"--- iteration 1",
		"final machine completion times",
		"overall makespan",
		"(unchanged)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRandomTies(t *testing.T) {
	path := writeCSV(t, smallETC)
	out, err := runCLI(t, "-etc", path, "-heuristic", "met", "-ties", "random", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "random ties") {
		t.Fatalf("ties mode not reported:\n%s", out)
	}
}

func TestSeededFlag(t *testing.T) {
	path := writeCSV(t, smallETC)
	out, err := runCLI(t, "-etc", path, "-heuristic", "sufferage", "-seeded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seeded(sufferage)") {
		t.Fatalf("seeded wrapper not applied:\n%s", out)
	}
}

func TestReadyTimes(t *testing.T) {
	path := writeCSV(t, "5,5\n")
	out, err := runCLI(t, "-etc", path, "-heuristic", "mct", "-ready", "4,0")
	if err != nil {
		t.Fatal(err)
	}
	// With machine 0 busy until 4, the task must land on machine 1 (CT 5).
	if !strings.Contains(out, "CT=5") {
		t.Fatalf("ready times ignored:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	path := writeCSV(t, smallETC)
	cases := [][]string{
		{},                                    // missing -etc
		{"-etc", "/nonexistent/file.csv"},     // unreadable
		{"-etc", path, "-heuristic", "bogus"}, // unknown heuristic
		{"-etc", path, "-ties", "sometimes"},  // unknown tie mode
		{"-etc", path, "-ready", "1,notanum"}, // bad ready list
		{"-etc", path, "-ready", "1"},         // wrong ready count
		{"-etc", writeCSV(t, "1,x\n")},        // invalid CSV
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// The golden test pins the full CLI output on the paper's reconstructed
// Sufferage example (Table 15): the deterministic-tie makespan increase must
// render byte-identically across versions.
func TestGoldenPaperSufferage(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "paper_sufferage.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-etc", filepath.Join("testdata", "paper_sufferage.csv"), "-heuristic", "sufferage")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
	// The paper's headline facts must be visible in the rendering.
	for _, want := range []string{"CT=9.5", "CT=10.5", "(INCREASED)", "improved", "worsened"} {
		if !strings.Contains(out, want) {
			t.Errorf("golden output missing %q", want)
		}
	}
}
