package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeCSV writes a small ETC matrix to a temp file and returns its path.
func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "etc.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

const smallETC = "4,9,9\n9,2,2\n9,9,3\n"

func TestRunsDeterministic(t *testing.T) {
	path := writeCSV(t, smallETC)
	out, err := runCLI(t, "-etc", path, "-heuristic", "mct")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"heuristic mct, 3 tasks, 3 machines",
		"--- iteration 0 (original mapping)",
		"--- iteration 1",
		"final machine completion times",
		"overall makespan",
		"(unchanged)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRandomTies(t *testing.T) {
	path := writeCSV(t, smallETC)
	out, err := runCLI(t, "-etc", path, "-heuristic", "met", "-ties", "random", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "random ties") {
		t.Fatalf("ties mode not reported:\n%s", out)
	}
}

func TestSeededFlag(t *testing.T) {
	path := writeCSV(t, smallETC)
	out, err := runCLI(t, "-etc", path, "-heuristic", "sufferage", "-seeded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seeded(sufferage)") {
		t.Fatalf("seeded wrapper not applied:\n%s", out)
	}
}

func TestReadyTimes(t *testing.T) {
	path := writeCSV(t, "5,5\n")
	out, err := runCLI(t, "-etc", path, "-heuristic", "mct", "-ready", "4,0")
	if err != nil {
		t.Fatal(err)
	}
	// With machine 0 busy until 4, the task must land on machine 1 (CT 5).
	if !strings.Contains(out, "CT=5") {
		t.Fatalf("ready times ignored:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	path := writeCSV(t, smallETC)
	cases := [][]string{
		{},                                    // missing -etc
		{"-etc", "/nonexistent/file.csv"},     // unreadable
		{"-etc", path, "-heuristic", "bogus"}, // unknown heuristic
		{"-etc", path, "-ties", "sometimes"},  // unknown tie mode
		{"-etc", path, "-ready", "1,notanum"}, // bad ready list
		{"-etc", path, "-ready", "1"},         // wrong ready count
		{"-etc", writeCSV(t, "1,x\n")},        // invalid CSV
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTraceAndMetricsFlags(t *testing.T) {
	path := writeCSV(t, smallETC)
	tracePath := filepath.Join(t.TempDir(), "events.jsonl")
	out, err := runCLI(t, "-etc", path, "-heuristic", "min-min", "-trace", tracePath, "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine metrics:", "counter   engine.iterations", "histogram engine.heuristic_ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if lines[0] != `{"event":"iteration_start","iteration":0,"tasks":3,"machines":3}` {
		t.Errorf("first trace line = %s", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], `{"event":"trace_done"`) {
		t.Errorf("last trace line = %s", lines[len(lines)-1])
	}
	for i, line := range lines {
		var decoded map[string]any
		if err := json.Unmarshal([]byte(line), &decoded); err != nil {
			t.Errorf("trace line %d not valid JSON: %v", i, err)
		}
	}
}

func TestTraceUnwritablePath(t *testing.T) {
	path := writeCSV(t, smallETC)
	if _, err := runCLI(t, "-etc", path, "-trace", "/nonexistent/dir/out.jsonl"); err == nil {
		t.Fatal("unwritable -trace path accepted")
	}
}

// elapsedNS matches the only wall-clock fields in the event stream; the
// golden comparison zeroes them (they are observational and vary run to
// run), pinning everything else byte for byte.
var elapsedNS = regexp.MustCompile(`"elapsed_ns":[0-9]+`)

func normalizeTrace(raw []byte) string {
	return string(elapsedNS.ReplaceAll(raw, []byte(`"elapsed_ns":0`)))
}

// TestGoldenTraceJSONL pins the -trace event stream on the paper's
// Sufferage example and proves it is deterministic run-to-run: two
// back-to-back runs must produce identical streams modulo wall-clock.
func TestGoldenTraceJSONL(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "paper_sufferage.trace.golden"))
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]string, 2)
	for i := range runs {
		tracePath := filepath.Join(t.TempDir(), "events.jsonl")
		if _, err := runCLI(t, "-etc", filepath.Join("testdata", "paper_sufferage.csv"),
			"-heuristic", "sufferage", "-trace", tracePath); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = normalizeTrace(raw)
	}
	if runs[0] != runs[1] {
		t.Fatalf("event stream not deterministic run-to-run:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", runs[0], runs[1])
	}
	if runs[0] != string(golden) {
		t.Fatalf("event stream drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", runs[0], golden)
	}
	// The stream must exhibit the paper's headline pathology.
	for _, want := range []string{`"original_makespan":10,"final_makespan":10.5`, `"heuristic":"sufferage"`} {
		if !strings.Contains(runs[0], want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// The golden test pins the full CLI output on the paper's reconstructed
// Sufferage example (Table 15): the deterministic-tie makespan increase must
// render byte-identically across versions.
func TestGoldenPaperSufferage(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "paper_sufferage.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-etc", filepath.Join("testdata", "paper_sufferage.csv"), "-heuristic", "sufferage")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
	// The paper's headline facts must be visible in the rendering.
	for _, want := range []string{"CT=9.5", "CT=10.5", "(INCREASED)", "improved", "worsened"} {
		if !strings.Contains(out, want) {
			t.Errorf("golden output missing %q", want)
		}
	}
}
