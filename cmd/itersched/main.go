// Command itersched runs a mapping heuristic and the paper's iterative
// technique on an ETC matrix read from a CSV file (one row per task, one
// column per machine), printing every iteration's mapping, Gantt chart and
// outcome classification.
//
// Usage:
//
//	itersched -etc workload.csv [-heuristic min-min] [-ties det|random]
//	          [-seed 1] [-seeded] [-ready 0,5,0]
//	          [-trace events.jsonl] [-metrics]
//
// -trace streams the engine's typed events (iteration_start,
// heuristic_done, machine_frozen, trace_done) as one JSON object per line;
// -metrics prints a deterministic snapshot of the engine counters after the
// run. Event timing fields (elapsed_ns) are wall-clock and observational
// only — everything else in the stream is deterministic per seed.
//
// Example:
//
//	etcgen -tasks 16 -machines 4 -out w.csv && itersched -etc w.csv -heuristic sufferage
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/etc"
	"repro/internal/gantt"
	"repro/internal/heuristics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tiebreak"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "itersched:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("itersched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		etcPath   = fs.String("etc", "", "path to the ETC matrix CSV (required)")
		heuristic = fs.String("heuristic", "min-min", "mapping heuristic: "+strings.Join(heuristics.Names(), ", "))
		ties      = fs.String("ties", "det", "tie-breaking: det (lowest index) or random")
		seed      = fs.Uint64("seed", 1, "seed for random tie-breaking and stochastic heuristics")
		seeded    = fs.Bool("seeded", false, "wrap the heuristic with seeding (never-worsen guarantee)")
		ready     = fs.String("ready", "", "comma-separated initial machine ready times (default all 0)")
		tracePath = fs.String("trace", "", "write engine events as JSONL to this path")
		metrics   = fs.Bool("metrics", false, "print an engine metrics snapshot after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *etcPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -etc")
	}
	f, err := os.Open(*etcPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := etc.ReadCSV(f)
	if err != nil {
		return err
	}
	var readyTimes []float64
	if *ready != "" {
		for _, part := range strings.Split(*ready, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("parsing -ready: %w", err)
			}
			readyTimes = append(readyTimes, v)
		}
	}
	in, err := sched.NewInstance(m, readyTimes)
	if err != nil {
		return err
	}
	h, err := heuristics.ByName(*heuristic, *seed)
	if err != nil {
		return err
	}
	if *seeded {
		h = heuristics.Seeded{Inner: h}
	}
	var policy core.PolicyFunc
	switch *ties {
	case "det":
		policy = core.Deterministic()
	case "random":
		policy = core.FixedPolicy(tiebreak.NewRandom(rng.New(*seed)))
	default:
		return fmt.Errorf("unknown -ties %q (want det or random)", *ties)
	}

	var observers obs.Multi
	var trace *obs.JSONL
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		trace = obs.NewJSONL(traceFile)
		observers = append(observers, trace)
	}
	var reg *obs.Metrics
	if *metrics {
		reg = obs.NewMetrics()
		observers = append(observers, obs.NewMetricsObserver(reg))
	}
	var observer obs.Observer
	if len(observers) > 0 {
		observer = observers
	}

	tr, err := core.IterateOpts(in, h, policy, core.Options{Observer: observer})
	if err != nil {
		return err
	}
	if trace != nil {
		if err := trace.Err(); err != nil {
			return fmt.Errorf("writing -trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("writing -trace: %w", err)
		}
	}

	fmt.Fprintf(stdout, "heuristic %s, %d tasks, %d machines, %s ties\n\n",
		h.Name(), in.Tasks(), in.Machines(), *ties)
	for _, it := range tr.Iterations {
		label := "original mapping"
		if it.Index > 0 {
			label = fmt.Sprintf("iterative mapping %d", it.Index)
		}
		fmt.Fprintf(stdout, "--- iteration %d (%s): machines %v\n", it.Index, label, it.Machines)
		sub, err := in.Restrict(it.Tasks, it.Machines)
		if err != nil {
			return err
		}
		local := make(map[int]int, len(it.Machines))
		for j, mm := range it.Machines {
			local[mm] = j
		}
		mp := sched.NewMapping(len(it.Tasks))
		for i := range it.Tasks {
			mp.Assign[i] = local[it.Assign[i]]
		}
		s, err := sched.Evaluate(sub, mp)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, gantt.Render(s, gantt.Options{
			Width:        60,
			MachineLabel: func(mm int) string { return fmt.Sprintf("m%d", it.Machines[mm]) },
			TaskLabel:    func(tt int) string { return fmt.Sprintf("t%d", it.Tasks[tt]) },
		}))
		if it.Index == len(tr.Iterations)-1 {
			fmt.Fprintf(stdout, "last remaining machine m%d finishes at %.4g\n\n", it.MakespanMachine, it.Makespan)
		} else {
			fmt.Fprintf(stdout, "makespan machine m%d frozen at %.4g\n\n", it.MakespanMachine, it.Makespan)
		}
	}

	fmt.Fprintln(stdout, "final machine completion times vs original mapping:")
	orig := tr.Iterations[0]
	outcomes := tr.MachineOutcomes()
	for mm := 0; mm < in.Machines(); mm++ {
		var before float64
		for j, om := range orig.Machines {
			if om == mm {
				before = orig.Completion[j]
			}
		}
		fmt.Fprintf(stdout, "  m%-3d %8.4g -> %8.4g  %s\n", mm, before, tr.FinalCompletion[mm], outcomes[mm])
	}
	fmt.Fprintf(stdout, "\noverall makespan: %.4g -> %.4g", tr.OriginalMakespan(), tr.FinalMakespan())
	switch {
	case tr.MakespanIncreased():
		fmt.Fprintln(stdout, "  (INCREASED)")
	case tr.FinalMakespan() < tr.OriginalMakespan():
		fmt.Fprintln(stdout, "  (improved)")
	default:
		fmt.Fprintln(stdout, "  (unchanged)")
	}
	if reg != nil {
		fmt.Fprintf(stdout, "\nengine metrics:\n%s", reg.Snapshot().Text())
	}
	return nil
}
