// Command etcgen generates synthetic ETC matrices with the range-based
// (Braun et al.) or CVB (Ali et al.) method and writes them as CSV.
//
// Usage:
//
//	etcgen -tasks 512 -machines 16 -out w.csv                  # range method, hihi
//	etcgen -method cvb -taskcv 0.6 -machinecv 0.1 -out w.csv   # CVB method
//	etcgen -class lolo-c -out w.csv                            # canonical class label
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/etc"
	"repro/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "etcgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("etcgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tasks       = fs.Int("tasks", 128, "number of tasks (rows)")
		machines    = fs.Int("machines", 8, "number of machines (columns)")
		method      = fs.String("method", "range", "generation method: range or cvb")
		class       = fs.String("class", "", "canonical class label (e.g. hihi-i, lolo-c); overrides het flags")
		taskHet     = fs.Float64("taskhet", 3000, "range method: task heterogeneity upper bound")
		machineHet  = fs.Float64("machinehet", 1000, "range method: machine heterogeneity upper bound")
		taskMean    = fs.Float64("taskmean", 1000, "cvb method: mean task execution time")
		taskCV      = fs.Float64("taskcv", 0.6, "cvb method: task coefficient of variation")
		machineCV   = fs.Float64("machinecv", 0.6, "cvb method: machine coefficient of variation")
		consistency = fs.String("consistency", "inconsistent", "consistent, semi-consistent or inconsistent")
		seed        = fs.Uint64("seed", 1, "generator seed")
		out         = fs.String("out", "", "output CSV path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cons, err := parseConsistency(*consistency)
	if err != nil {
		return err
	}
	src := rng.New(*seed)

	var m *etc.Matrix
	switch {
	case *class != "":
		c, err := classByLabel(*class)
		if err != nil {
			return err
		}
		m, err = etc.GenerateClass(c, *tasks, *machines, src)
		if err != nil {
			return err
		}
	case *method == "range":
		m, err = etc.GenerateRange(etc.RangeParams{
			Tasks: *tasks, Machines: *machines,
			TaskHet: *taskHet, MachineHet: *machineHet,
			Consistency: cons,
		}, src)
		if err != nil {
			return err
		}
	case *method == "cvb":
		m, err = etc.GenerateCVB(etc.CVBParams{
			Tasks: *tasks, Machines: *machines,
			TaskMean: *taskMean, TaskCV: *taskCV, MachineCV: *machineCV,
			Consistency: cons,
		}, src)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -method %q (want range or cvb)", *method)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := m.WriteCSV(w); err != nil {
		return err
	}
	s := m.ComputeStats()
	fmt.Fprintf(stderr, "etcgen: %dx%d matrix, mean %.4g, range [%.4g, %.4g], taskCV %.3f, machineCV %.3f\n",
		m.Tasks(), m.Machines(), s.Mean, s.Min, s.Max, s.TaskCV, s.MachineCV)
	return nil
}

func parseConsistency(s string) (etc.Consistency, error) {
	switch s {
	case "consistent":
		return etc.Consistent, nil
	case "semi-consistent":
		return etc.SemiConsistent, nil
	case "inconsistent":
		return etc.Inconsistent, nil
	default:
		return 0, fmt.Errorf("unknown consistency %q", s)
	}
}

func classByLabel(label string) (etc.Class, error) {
	for _, c := range etc.AllClasses() {
		if c.Label() == label {
			return c, nil
		}
	}
	var labels []string
	for _, c := range etc.AllClasses() {
		labels = append(labels, c.Label())
	}
	return etc.Class{}, fmt.Errorf("unknown class %q (available: %v)", label, labels)
}
