package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/etc"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestGenerateToStdout(t *testing.T) {
	out, errb, err := runCLI(t, "-tasks", "4", "-machines", "3", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	m, err := etc.ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not a valid ETC CSV: %v", err)
	}
	if m.Tasks() != 4 || m.Machines() != 3 {
		t.Fatalf("shape %dx%d", m.Tasks(), m.Machines())
	}
	if !strings.Contains(errb, "4x3 matrix") {
		t.Fatalf("stderr summary missing: %q", errb)
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.csv")
	if _, _, err := runCLI(t, "-tasks", "2", "-machines", "2", "-out", path); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "-tasks", "2", "-machines", "2") // same seed default
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := etc.ReadCSV(strings.NewReader(data)); err != nil {
		t.Fatalf("file output invalid: %v", err)
	}
}

func TestCVBMethod(t *testing.T) {
	out, _, err := runCLI(t, "-method", "cvb", "-tasks", "10", "-machines", "4", "-taskcv", "0.3", "-machinecv", "0.3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := etc.ReadCSV(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

func TestClassLabel(t *testing.T) {
	out, _, err := runCLI(t, "-class", "lolo-c", "-tasks", "8", "-machines", "4")
	if err != nil {
		t.Fatal(err)
	}
	m, err := etc.ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConsistent() {
		t.Fatal("lolo-c output is not consistent")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _, err := runCLI(t, "-seed", "5", "-tasks", "6", "-machines", "3")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCLI(t, "-seed", "5", "-tasks", "6", "-machines", "3")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different matrices")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-method", "bogus"},
		{"-class", "nope"},
		{"-consistency", "weird"},
		{"-tasks", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}
