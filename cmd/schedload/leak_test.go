package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain is the package's goroutine-leak gate: the sweep boots whole
// in-process clusters per backend count, so a leg that returns early
// without tearing its stack down leaks listener, gateway and backend
// goroutines. Once the suite finishes the goroutine count must return to
// (near) the pre-suite baseline — the regression gate for the failed-leg
// teardown bug.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		// Allow a small slack for runtime/testing internals, and poll: test
		// goroutines unwind asynchronously after their stacks drain.
		const slack = 2
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= baseline+slack {
				break
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines, baseline %d (+%d slack)\n%s\n",
					runtime.NumGoroutine(), baseline, slack, buf[:n])
				code = 1
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	os.Exit(code)
}
