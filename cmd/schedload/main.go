// Command schedload is a seeded, deterministic load generator for schedd.
// It generates a fixed set of distinct ETC workloads from an explicit seed,
// fires them at a running daemon from concurrent resilient clients
// (internal/client: bounded retries, seeded-jitter backoff, per-attempt
// timeouts, circuit breaker), and reports throughput and latency quantiles
// (via internal/stats) plus cache-hit and retry counts. Request contents
// are fully deterministic in the flags; the latency and throughput numbers
// are wall-clock and observational only.
//
// With -verify (the default) it also asserts the service's core guarantee:
// every response to an identical request body is byte-identical, whether it
// was computed by a worker, served from the cache, or recovered through
// retries.
//
// With -faults the generator interposes an in-process seeded fault proxy
// (internal/faults) between its clients and the daemon, so the resilient
// client can be exercised against rejections, dropped connections and
// truncated bodies without touching the daemon itself.
//
// Usage:
//
//	schedload -addr 127.0.0.1:8080 [-endpoint iterate|map] [-requests 64]
//	          [-concurrency 8] [-tasks 16] [-machines 4] [-distinct 4]
//	          [-class hihi-i] [-heuristic min-min] [-ties det] [-seed 1]
//	          [-retries 3] [-backoff 10ms] [-timeout 5s] [-faults spec]
//	          [-trace-out spans.jsonl] [-verify=true]
//
// With -trace-out every Post is traced client-side — a root span per
// logical request with one child span per HTTP attempt (carrying the
// propagated trace ID and the server's echo) and per backoff sleep —
// appended as JSONL for cmd/schedtrace. Span IDs derive from the request
// key and a sequence, so the span set is deterministic in the flags even
// though durations are wall-clock.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/etc"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "schedd address, host:port or http://host:port (required)")
		endpoint    = fs.String("endpoint", "iterate", "scheduling endpoint: iterate or map")
		requests    = fs.Int("requests", 64, "total requests to send")
		concurrency = fs.Int("concurrency", 8, "concurrent client goroutines")
		tasks       = fs.Int("tasks", 16, "tasks per generated workload")
		machines    = fs.Int("machines", 4, "machines per generated workload")
		distinct    = fs.Int("distinct", 4, "distinct workloads cycled through the request stream")
		classLabel  = fs.String("class", "hihi-i", "workload class label, e.g. hihi-c, lolo-i (see etc.AllClasses)")
		heuristic   = fs.String("heuristic", "min-min", "mapping heuristic for every request")
		ties        = fs.String("ties", "det", "tie-breaking policy: det or random")
		seed        = fs.Uint64("seed", 1, "seed for workload generation, the requests' scheduling seed, backoff jitter and fault injection")
		retries     = fs.Int("retries", 3, "max retries per request after the first attempt (0 disables)")
		backoff     = fs.Duration("backoff", 10*time.Millisecond, "base retry backoff (exponential, seeded jitter)")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-attempt request timeout (a stalled daemon costs bounded time)")
		faultSpec   = fs.String("faults", "", "interpose an in-process seeded fault proxy, e.g. seed=7,reject=0.2:503:1,drop=0.1,truncate=0.1")
		traceOut    = fs.String("trace-out", "", "append client-side request spans as JSONL to this path (analyze with cmd/schedtrace)")
		verify      = fs.Bool("verify", true, "assert byte-identical responses for identical request bodies")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		fs.Usage()
		return fmt.Errorf("missing -addr")
	}
	if *requests <= 0 || *concurrency <= 0 || *distinct <= 0 {
		return fmt.Errorf("-requests, -concurrency and -distinct must be positive")
	}
	if *retries < 0 || *backoff <= 0 || *timeout <= 0 {
		return fmt.Errorf("-retries must be >= 0; -backoff and -timeout must be positive")
	}
	if *endpoint != "iterate" && *endpoint != "map" {
		return fmt.Errorf("unknown -endpoint %q (want iterate or map)", *endpoint)
	}
	class, err := classByLabel(*classLabel)
	if err != nil {
		return err
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	// One registry for the whole run: the resilient clients and (when
	// -faults is set) the fault proxy record into it, so the final
	// resilience line pairs injected faults with the retries they cost.
	reg := obs.NewMetrics()
	if *faultSpec != "" {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		proxyBase, err := startFaultProxy(spec, base, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "schedload: fault proxy %s -> %s (%s)\n", proxyBase, base, spec)
		base = proxyBase
	}
	target := base + "/v1/" + *endpoint

	// The request stream is deterministic in the flags: one rng source,
	// consumed workload by workload.
	src := rng.New(*seed)
	bodies := make([][]byte, *distinct)
	for i := range bodies {
		m, err := etc.GenerateClass(class, *tasks, *machines, src)
		if err != nil {
			return err
		}
		bodies[i], err = json.Marshal(serve.Request{
			ETC:       m.Values(),
			Heuristic: *heuristic,
			Ties:      *ties,
			Seed:      *seed,
		})
		if err != nil {
			return err
		}
	}

	type outcome struct {
		status    int
		cache     string
		body      []byte
		err       error
		latencyMS float64
	}
	outcomes := make([]outcome, *requests)
	var next atomic.Int64
	// A zero-value http.Client has no timeout: one stalled connection would
	// hang the generator forever. The resilient client bounds every attempt
	// and retries transient failures; it is shared so the breaker sees the
	// whole request stream. MaxRetries: 0 in client.Options means "default",
	// so map the flag's literal 0 to the negative "disabled" form.
	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1
	}
	var traceSink *obs.JSONL
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		tracer = obs.NewTracer(traceSink)
	}
	cl := client.New(client.Options{
		MaxRetries:  maxRetries,
		BaseBackoff: *backoff,
		Timeout:     *timeout,
		Seed:        *seed,
		Metrics:     reg,
		Tracer:      tracer,
	})
	var wg sync.WaitGroup
	start := time.Now() // wall-clock: throughput/latency reporting only
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				t0 := time.Now()
				resp, err := cl.Post(context.Background(), target, bodies[i%*distinct])
				latencyMS := float64(time.Since(t0)) / float64(time.Millisecond)
				var se *client.StatusError
				switch {
				case err == nil:
					outcomes[i] = outcome{
						status:    resp.Status,
						cache:     resp.Cache,
						body:      resp.Body,
						latencyMS: latencyMS,
					}
				case errors.As(err, &se):
					outcomes[i] = outcome{status: se.Status, body: se.Body, latencyMS: latencyMS}
				default:
					outcomes[i] = outcome{err: err, latencyMS: latencyMS}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, failed, hits int
	latencies := make([]float64, 0, *requests)
	for i, o := range outcomes {
		switch {
		case o.err != nil:
			failed++
			fmt.Fprintf(stderr, "request %d: %v\n", i, o.err)
		case o.status != http.StatusOK:
			failed++
			fmt.Fprintf(stderr, "request %d: status %d: %s", i, o.status, o.body)
		default:
			ok++
			latencies = append(latencies, o.latencyMS)
			if o.cache == "hit" {
				hits++
			}
		}
	}

	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	fmt.Fprintf(stdout, "schedload: %d requests to %s (%dx%d %s, heuristic %s, ties %s, seed %d, %d distinct, concurrency %d)\n",
		*requests, target, *tasks, *machines, class.Label(), *heuristic, *ties, *seed, *distinct, *concurrency)
	fmt.Fprintf(stdout, "responses: %d ok, %d errors, %d cache hits\n", ok, failed, hits)
	fmt.Fprintf(stdout, "resilience: %d attempts, %d retries, %d breaker fast-fails, %d injected faults\n",
		counters["client.attempts_total"], counters["client.retries_total"],
		counters["client.fastfail_total"], counters["faults.injected_total"])
	fmt.Fprintf(stdout, "throughput: %.1f req/s (%.1f ms total, observational)\n",
		float64(*requests)/elapsed.Seconds(), float64(elapsed)/float64(time.Millisecond))
	if len(latencies) > 0 {
		qs, err := stats.Quantiles(latencies, 0.5, 0.9, 0.99, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "latency ms: p50 %.3f p90 %.3f p99 %.3f max %.3f (observational)\n",
			qs[0], qs[1], qs[2], qs[3])
	}

	if *verify {
		// Identical bodies must have produced byte-identical responses —
		// the service's determinism guarantee, cache hit or miss.
		reference := make([][]byte, *distinct)
		for i, o := range outcomes {
			if o.err != nil || o.status != http.StatusOK {
				continue
			}
			k := i % *distinct
			if reference[k] == nil {
				reference[k] = o.body
				continue
			}
			if !bytes.Equal(reference[k], o.body) {
				return fmt.Errorf("request %d: response differs from an earlier response to the identical body", i)
			}
		}
		fmt.Fprintf(stdout, "verify: %d distinct bodies -> byte-identical responses\n", *distinct)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, *requests)
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
	}
	return nil
}

// startFaultProxy listens on an ephemeral loopback port and relays every
// request to base through the seeded fault injector, recording faults.*
// counters into reg. The listener lives for the process: schedload is a
// short-lived tool.
func startFaultProxy(spec faults.Spec, base string, reg *obs.Metrics) (string, error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("-addr: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	// Severed client connections mid-relay are the injector's job, not
	// noise for the terminal.
	proxy.ErrorLog = log.New(io.Discard, "", 0)
	go http.Serve(ln, faults.New(spec, proxy, reg))
	return "http://" + ln.Addr().String(), nil
}

// classByLabel resolves an etc workload class from its conventional label.
func classByLabel(label string) (etc.Class, error) {
	var labels []string
	for _, c := range etc.AllClasses() {
		if c.Label() == label {
			return c, nil
		}
		labels = append(labels, c.Label())
	}
	return etc.Class{}, fmt.Errorf("unknown -class %q (available: %s)", label, strings.Join(labels, ", "))
}
