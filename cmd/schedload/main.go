// Command schedload is a seeded, deterministic load generator for schedd.
// It generates a fixed set of distinct ETC workloads from an explicit seed,
// fires them at a running daemon from concurrent resilient clients
// (internal/client: bounded retries, seeded-jitter backoff, per-attempt
// timeouts, circuit breaker), and reports throughput and latency quantiles
// (via internal/stats) plus cache-hit and retry counts. Request contents
// are fully deterministic in the flags; the latency and throughput numbers
// are wall-clock and observational only.
//
// With -verify (the default) it also asserts the service's core guarantee:
// every response to an identical request body is byte-identical, whether it
// was computed by a worker, served from the cache, or recovered through
// retries.
//
// With -batch N the request stream is grouped into /v1/batch posts of up to
// N items each. Latency quantiles are then per item (batch wall time divided
// by its item count), and -verify checks each batch item's body against a
// singleton response to the identical request: item body == singleton body
// minus the trailing newline.
//
// With -faults the generator interposes an in-process seeded fault proxy
// (internal/faults) between its clients and the daemon, so the resilient
// client can be exercised against rejections, dropped connections and
// truncated bodies without touching the daemon itself.
//
// Usage:
//
//	schedload -addr 127.0.0.1:8080 [-endpoint iterate|map] [-requests 64]
//	          [-batch 0] [-concurrency 8] [-tasks 16] [-machines 4]
//	          [-distinct 4] [-class hihi-i] [-heuristic min-min] [-ties det]
//	          [-seed 1] [-retries 3] [-backoff 10ms] [-timeout 5s]
//	          [-faults spec] [-trace-out spans.jsonl] [-verify=true]
//
// With -trace-out every Post is traced client-side — a root span per
// logical request with one child span per HTTP attempt (carrying the
// propagated trace ID and the server's echo) and per backoff sleep —
// appended as JSONL for cmd/schedtrace. Span IDs derive from the request
// key and a sequence, so the span set is deterministic in the flags even
// though durations are wall-clock.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/etc"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "schedd address, host:port or http://host:port (required)")
		endpoint    = fs.String("endpoint", "iterate", "scheduling endpoint: iterate or map")
		requests    = fs.Int("requests", 64, "total requests to send")
		batch       = fs.Int("batch", 0, "group requests into /v1/batch posts of up to this many items (0 = singleton requests)")
		concurrency = fs.Int("concurrency", 8, "concurrent client goroutines")
		tasks       = fs.Int("tasks", 16, "tasks per generated workload")
		machines    = fs.Int("machines", 4, "machines per generated workload")
		distinct    = fs.Int("distinct", 4, "distinct workloads cycled through the request stream")
		classLabel  = fs.String("class", "hihi-i", "workload class label, e.g. hihi-c, lolo-i (see etc.AllClasses)")
		heuristic   = fs.String("heuristic", "min-min", "mapping heuristic for every request")
		ties        = fs.String("ties", "det", "tie-breaking policy: det or random")
		seed        = fs.Uint64("seed", 1, "seed for workload generation, the requests' scheduling seed, backoff jitter and fault injection")
		retries     = fs.Int("retries", 3, "max retries per request after the first attempt (0 disables)")
		backoff     = fs.Duration("backoff", 10*time.Millisecond, "base retry backoff (exponential, seeded jitter)")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-attempt request timeout (a stalled daemon costs bounded time)")
		faultSpec   = fs.String("faults", "", "interpose an in-process seeded fault proxy, e.g. seed=7,reject=0.2:503:1,drop=0.1,truncate=0.1")
		traceOut    = fs.String("trace-out", "", "append client-side request spans as JSONL to this path (analyze with cmd/schedtrace)")
		verify      = fs.Bool("verify", true, "assert byte-identical responses for identical request bodies")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		fs.Usage()
		return fmt.Errorf("missing -addr")
	}
	if *requests <= 0 || *concurrency <= 0 || *distinct <= 0 {
		return fmt.Errorf("-requests, -concurrency and -distinct must be positive")
	}
	if *batch < 0 {
		return fmt.Errorf("-batch must be >= 0")
	}
	if *retries < 0 || *backoff <= 0 || *timeout <= 0 {
		return fmt.Errorf("-retries must be >= 0; -backoff and -timeout must be positive")
	}
	if *endpoint != "iterate" && *endpoint != "map" {
		return fmt.Errorf("unknown -endpoint %q (want iterate or map)", *endpoint)
	}
	class, err := classByLabel(*classLabel)
	if err != nil {
		return err
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	// One registry for the whole run: the resilient clients and (when
	// -faults is set) the fault proxy record into it, so the final
	// resilience line pairs injected faults with the retries they cost.
	reg := obs.NewMetrics()
	if *faultSpec != "" {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		proxyBase, err := startFaultProxy(spec, base, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "schedload: fault proxy %s -> %s (%s)\n", proxyBase, base, spec)
		base = proxyBase
	}
	target := base + "/v1/" + *endpoint
	batchTarget := base + "/v1/batch"

	// The request stream is deterministic in the flags: one rng source,
	// consumed workload by workload.
	src := rng.New(*seed)
	reqs := make([]serve.Request, *distinct)
	bodies := make([][]byte, *distinct)
	for i := range bodies {
		m, err := etc.GenerateClass(class, *tasks, *machines, src)
		if err != nil {
			return err
		}
		reqs[i] = serve.Request{
			ETC:       m.Values(),
			Heuristic: *heuristic,
			Ties:      *ties,
			Seed:      *seed,
		}
		bodies[i], err = json.Marshal(reqs[i])
		if err != nil {
			return err
		}
	}

	// In batch mode the stream is regrouped into ceil(requests/batch) batch
	// bodies; item i of the logical stream keeps its workload bodies[i%distinct].
	var batchBodies [][]byte
	if *batch > 0 {
		numBatches := (*requests + *batch - 1) / *batch
		batchBodies = make([][]byte, numBatches)
		for g := range batchBodies {
			lo, hi := g**batch, min((g+1)**batch, *requests)
			items := make([]serve.BatchItem, 0, hi-lo)
			for i := lo; i < hi; i++ {
				items = append(items, serve.BatchItem{Endpoint: *endpoint, Request: reqs[i%*distinct]})
			}
			b, err := json.Marshal(serve.BatchRequest{Items: items})
			if err != nil {
				return err
			}
			batchBodies[g] = b
		}
	}

	type outcome struct {
		status    int
		cache     string
		body      []byte
		err       error
		latencyMS float64
	}
	outcomes := make([]outcome, *requests)
	var next atomic.Int64
	// A zero-value http.Client has no timeout: one stalled connection would
	// hang the generator forever. The resilient client bounds every attempt
	// and retries transient failures; it is shared so the breaker sees the
	// whole request stream. MaxRetries: 0 in client.Options means "default",
	// so map the flag's literal 0 to the negative "disabled" form.
	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1
	}
	var traceSink *obs.JSONL
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		tracer = obs.NewTracer(traceSink)
	}
	cl := client.New(client.Options{
		MaxRetries:  maxRetries,
		BaseBackoff: *backoff,
		Timeout:     *timeout,
		Seed:        *seed,
		Metrics:     reg,
		Tracer:      tracer,
	})
	// sendSingleton resolves logical request i through a singleton post;
	// sendBatch resolves one batch post into its items' outcomes, charging
	// every item an equal share of the batch's wall time.
	sendSingleton := func(i int) {
		t0 := time.Now()
		resp, err := cl.Post(context.Background(), target, bodies[i%*distinct])
		latencyMS := float64(time.Since(t0)) / float64(time.Millisecond)
		var se *client.StatusError
		switch {
		case err == nil:
			outcomes[i] = outcome{
				status:    resp.Status,
				cache:     resp.Cache,
				body:      resp.Body,
				latencyMS: latencyMS,
			}
		case errors.As(err, &se):
			outcomes[i] = outcome{status: se.Status, body: se.Body, latencyMS: latencyMS}
		default:
			outcomes[i] = outcome{err: err, latencyMS: latencyMS}
		}
	}
	sendBatch := func(g int) {
		lo, hi := g**batch, min((g+1)**batch, *requests)
		t0 := time.Now()
		resp, err := cl.Post(context.Background(), batchTarget, batchBodies[g])
		perItemMS := float64(time.Since(t0)) / float64(time.Millisecond) / float64(hi-lo)
		fill := func(o outcome) {
			o.latencyMS = perItemMS
			for i := lo; i < hi; i++ {
				outcomes[i] = o
			}
		}
		var se *client.StatusError
		switch {
		case err == nil:
			var br serve.BatchResponse
			if uerr := json.Unmarshal(resp.Body, &br); uerr != nil {
				fill(outcome{err: fmt.Errorf("batch envelope: %w", uerr)})
				return
			}
			if len(br.Results) != hi-lo {
				fill(outcome{err: fmt.Errorf("batch returned %d results for %d items", len(br.Results), hi-lo)})
				return
			}
			for i := lo; i < hi; i++ {
				res := br.Results[i-lo]
				outcomes[i] = outcome{status: res.Status, cache: res.Cache, body: res.Body, latencyMS: perItemMS}
			}
		case errors.As(err, &se):
			fill(outcome{status: se.Status, body: se.Body})
		default:
			fill(outcome{err: err})
		}
	}
	jobs := *requests
	send := sendSingleton
	if *batch > 0 {
		jobs = len(batchBodies)
		send = sendBatch
	}

	var wg sync.WaitGroup
	start := time.Now() // wall-clock: throughput/latency reporting only
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				send(j)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, failed, hits int
	latencies := make([]float64, 0, *requests)
	for i, o := range outcomes {
		switch {
		case o.err != nil:
			failed++
			fmt.Fprintf(stderr, "request %d: %v\n", i, o.err)
		case o.status != http.StatusOK:
			failed++
			fmt.Fprintf(stderr, "request %d: status %d: %s", i, o.status, o.body)
		default:
			ok++
			latencies = append(latencies, o.latencyMS)
			if o.cache == "hit" {
				hits++
			}
		}
	}

	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if *batch > 0 {
		fmt.Fprintf(stdout, "schedload: %d requests to %s in %d batches of up to %d (%dx%d %s, heuristic %s, ties %s, seed %d, %d distinct, concurrency %d)\n",
			*requests, batchTarget, len(batchBodies), *batch, *tasks, *machines, class.Label(), *heuristic, *ties, *seed, *distinct, *concurrency)
	} else {
		fmt.Fprintf(stdout, "schedload: %d requests to %s (%dx%d %s, heuristic %s, ties %s, seed %d, %d distinct, concurrency %d)\n",
			*requests, target, *tasks, *machines, class.Label(), *heuristic, *ties, *seed, *distinct, *concurrency)
	}
	fmt.Fprintf(stdout, "responses: %d ok, %d errors, %d cache hits\n", ok, failed, hits)
	fmt.Fprintf(stdout, "resilience: %d attempts, %d retries, %d breaker fast-fails, %d injected faults\n",
		counters["client.attempts_total"], counters["client.retries_total"],
		counters["client.fastfail_total"], counters["faults.injected_total"])
	fmt.Fprintf(stdout, "throughput: %.1f req/s (%.1f ms total, observational)\n",
		float64(*requests)/elapsed.Seconds(), float64(elapsed)/float64(time.Millisecond))
	if len(latencies) > 0 {
		qs, err := stats.Quantiles(latencies, 0.5, 0.9, 0.99, 1)
		if err != nil {
			return err
		}
		label := "latency ms"
		if *batch > 0 {
			label = "per-item latency ms"
		}
		fmt.Fprintf(stdout, "%s: p50 %.3f p90 %.3f p99 %.3f max %.3f (observational)\n",
			label, qs[0], qs[1], qs[2], qs[3])
	}

	if *verify {
		// Identical bodies must have produced byte-identical responses —
		// the service's determinism guarantee, cache hit or miss. In batch
		// mode the reference is a fresh singleton response per distinct
		// body: a batch item's bytes must equal the singleton response
		// minus its trailing newline (the envelope carries no framing).
		reference := make([][]byte, *distinct)
		if *batch > 0 {
			for k, body := range bodies {
				resp, err := cl.Post(context.Background(), target, body)
				if err != nil {
					return fmt.Errorf("verify: singleton reference %d: %w", k, err)
				}
				reference[k] = bytes.TrimSuffix(resp.Body, []byte("\n"))
			}
		}
		for i, o := range outcomes {
			if o.err != nil || o.status != http.StatusOK {
				continue
			}
			k := i % *distinct
			if reference[k] == nil {
				reference[k] = o.body
				continue
			}
			if !bytes.Equal(reference[k], o.body) {
				if *batch > 0 {
					return fmt.Errorf("request %d: batch item differs from the singleton response to the identical body", i)
				}
				return fmt.Errorf("request %d: response differs from an earlier response to the identical body", i)
			}
		}
		if *batch > 0 {
			fmt.Fprintf(stdout, "verify: %d distinct bodies -> batch items byte-identical to singleton responses\n", *distinct)
		} else {
			fmt.Fprintf(stdout, "verify: %d distinct bodies -> byte-identical responses\n", *distinct)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, *requests)
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
	}
	return nil
}

// startFaultProxy listens on an ephemeral loopback port and relays every
// request to base through the seeded fault injector, recording faults.*
// counters into reg. The listener lives for the process: schedload is a
// short-lived tool.
func startFaultProxy(spec faults.Spec, base string, reg *obs.Metrics) (string, error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("-addr: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	// Severed client connections mid-relay are the injector's job, not
	// noise for the terminal.
	proxy.ErrorLog = log.New(io.Discard, "", 0)
	go http.Serve(ln, faults.New(spec, proxy, reg))
	return "http://" + ln.Addr().String(), nil
}

// classByLabel resolves an etc workload class from its conventional label.
func classByLabel(label string) (etc.Class, error) {
	var labels []string
	for _, c := range etc.AllClasses() {
		if c.Label() == label {
			return c, nil
		}
		labels = append(labels, c.Label())
	}
	return etc.Class{}, fmt.Errorf("unknown -class %q (available: %s)", label, strings.Join(labels, ", "))
}
