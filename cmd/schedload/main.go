// Command schedload is a seeded, deterministic load generator for schedd.
// It generates a fixed set of distinct ETC workloads from an explicit seed,
// fires them at a running daemon from concurrent resilient clients
// (internal/client: bounded retries, seeded-jitter backoff, per-attempt
// timeouts, circuit breaker), and reports throughput and latency quantiles
// (via internal/stats) plus cache-hit and retry counts. Request contents
// are fully deterministic in the flags; the latency and throughput numbers
// are wall-clock and observational only.
//
// With -verify (the default) it also asserts the service's core guarantee:
// every response to an identical request body is byte-identical, whether it
// was computed by a worker, served from the cache, or recovered through
// retries.
//
// With -batch N the request stream is grouped into /v1/batch posts of up to
// N items each. Latency quantiles are then per item (batch wall time divided
// by its item count), and -verify checks each batch item's body against a
// singleton response to the identical request: item body == singleton body
// minus the trailing newline.
//
// With -faults the generator interposes an in-process seeded fault proxy
// (internal/faults) between its clients and the daemon, so the resilient
// client can be exercised against rejections, dropped connections and
// truncated bodies without touching the daemon itself.
//
// With -backends N1,N2,... schedload runs a capacity sweep instead of
// targeting a daemon: for each count it starts that many in-process schedd
// backends behind a cluster gateway (internal/cluster), drives the identical
// deterministic request stream at the gateway, and reports per-count
// throughput. -verify then additionally proves the horizontal-scale
// guarantee: the response bytes for every distinct body are identical across
// every backend count (and to each other within a count). The sweep owns its
// stack, so it conflicts with -addr and -faults.
//
// Usage:
//
//	schedload -addr 127.0.0.1:8080 [-endpoint iterate|map] [-requests 64]
//	          [-batch 0] [-concurrency 8] [-tasks 16] [-machines 4]
//	          [-distinct 4] [-class hihi-i] [-heuristic min-min] [-ties det]
//	          [-seed 1] [-retries 3] [-backoff 10ms] [-timeout 5s]
//	          [-faults spec] [-trace-out spans.jsonl] [-verify=true]
//	schedload -backends 1,2,4 [same stream flags]
//
// With -trace-out every Post is traced client-side — a root span per
// logical request with one child span per HTTP attempt (carrying the
// propagated trace ID and the server's echo) and per backoff sleep —
// appended as JSONL for cmd/schedtrace. Span IDs derive from the request
// key and a sequence, so the span set is deterministic in the flags even
// though durations are wall-clock.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/etc"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/stats"
)

// outcome is one logical request's result; in batch mode every item of a
// batch post becomes its own outcome.
type outcome struct {
	status    int
	cache     string
	body      []byte
	err       error
	latencyMS float64
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks a command-line mistake: bad flag syntax or a nonsensical
// value. main exits 2 for these (usage), 1 for runtime failures.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.As(err, &usageError{}):
		return 2
	default:
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "", "schedd address, host:port or http://host:port (required unless -backends)")
		backendsSpec = fs.String("backends", "", "capacity sweep: comma-separated in-process backend counts, e.g. 1,2,4 (conflicts with -addr and -faults)")
		endpoint     = fs.String("endpoint", "iterate", "scheduling endpoint: iterate or map")
		requests     = fs.Int("requests", 64, "total requests to send")
		batch        = fs.Int("batch", 0, "group requests into /v1/batch posts of up to this many items (0 = singleton requests)")
		concurrency  = fs.Int("concurrency", 8, "concurrent client goroutines")
		tasks        = fs.Int("tasks", 16, "tasks per generated workload")
		machines     = fs.Int("machines", 4, "machines per generated workload")
		distinct     = fs.Int("distinct", 4, "distinct workloads cycled through the request stream")
		classLabel   = fs.String("class", "hihi-i", "workload class label, e.g. hihi-c, lolo-i (see etc.AllClasses)")
		heuristic    = fs.String("heuristic", "min-min", "mapping heuristic for every request")
		ties         = fs.String("ties", "det", "tie-breaking policy: det or random")
		seed         = fs.Uint64("seed", 1, "seed for workload generation, the requests' scheduling seed, backoff jitter and fault injection")
		retries      = fs.Int("retries", 3, "max retries per request after the first attempt (0 disables)")
		backoff      = fs.Duration("backoff", 10*time.Millisecond, "base retry backoff (exponential, seeded jitter)")
		timeout      = fs.Duration("timeout", 5*time.Second, "per-attempt request timeout (a stalled daemon costs bounded time)")
		faultSpec    = fs.String("faults", "", "interpose an in-process seeded fault proxy, e.g. seed=7,reject=0.2:503:1,drop=0.1,truncate=0.1")
		traceOut     = fs.String("trace-out", "", "append client-side request spans as JSONL to this path (analyze with cmd/schedtrace)")
		verify       = fs.Bool("verify", true, "assert byte-identical responses for identical request bodies (and across -backends counts)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	var sweepCounts []int
	if *backendsSpec != "" {
		if *addr != "" {
			return usagef("-backends runs its own in-process cluster and conflicts with -addr")
		}
		if *faultSpec != "" {
			return usagef("-backends conflicts with -faults (the sweep measures clean capacity)")
		}
		var err error
		if sweepCounts, err = parseCounts(*backendsSpec); err != nil {
			return usageError{err}
		}
	} else if *addr == "" {
		fs.Usage()
		return usagef("missing -addr")
	}
	if *requests <= 0 || *concurrency <= 0 || *distinct <= 0 {
		return usagef("-requests, -concurrency and -distinct must be positive")
	}
	if *batch < 0 {
		return usagef("-batch must be >= 0")
	}
	if *retries < 0 || *backoff <= 0 || *timeout <= 0 {
		return usagef("-retries must be >= 0; -backoff and -timeout must be positive")
	}
	if *endpoint != "iterate" && *endpoint != "map" {
		return usagef("unknown -endpoint %q (want iterate or map)", *endpoint)
	}
	class, err := classByLabel(*classLabel)
	if err != nil {
		return usageError{err}
	}

	// The request stream is deterministic in the flags: one rng source,
	// consumed workload by workload. The sweep reuses the same bodies for
	// every backend count, so every gateway sees the identical stream.
	src := rng.New(*seed)
	reqs := make([]serve.Request, *distinct)
	bodies := make([][]byte, *distinct)
	for i := range bodies {
		m, err := etc.GenerateClass(class, *tasks, *machines, src)
		if err != nil {
			return err
		}
		reqs[i] = serve.Request{
			ETC:       m.Values(),
			Heuristic: *heuristic,
			Ties:      *ties,
			Seed:      *seed,
		}
		bodies[i], err = json.Marshal(reqs[i])
		if err != nil {
			return err
		}
	}

	// In batch mode the stream is regrouped into ceil(requests/batch) batch
	// bodies; item i of the logical stream keeps its workload bodies[i%distinct].
	var batchBodies [][]byte
	if *batch > 0 {
		numBatches := (*requests + *batch - 1) / *batch
		batchBodies = make([][]byte, numBatches)
		for g := range batchBodies {
			lo, hi := g**batch, min((g+1)**batch, *requests)
			items := make([]serve.BatchItem, 0, hi-lo)
			for i := lo; i < hi; i++ {
				items = append(items, serve.BatchItem{Endpoint: *endpoint, Request: reqs[i%*distinct]})
			}
			b, err := json.Marshal(serve.BatchRequest{Items: items})
			if err != nil {
				return err
			}
			batchBodies[g] = b
		}
	}

	// MaxRetries: 0 in client.Options means "default", so map the flag's
	// literal 0 to the negative "disabled" form.
	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1
	}
	var traceSink *obs.JSONL
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		tracer = obs.NewTracer(traceSink)
	}

	// drive fires the whole stream at base from *concurrency goroutines
	// through cl and returns one outcome per logical request plus the wall
	// time (observational only). sendSingleton resolves logical request i
	// through a singleton post; sendBatch resolves one batch post into its
	// items' outcomes, charging every item an equal share of the batch's
	// wall time.
	drive := func(cl *client.Client, base string) ([]outcome, time.Duration) {
		target := base + "/v1/" + *endpoint
		batchTarget := base + "/v1/batch"
		outcomes := make([]outcome, *requests)
		var next atomic.Int64
		sendSingleton := func(i int) {
			t0 := time.Now()
			resp, err := cl.Post(context.Background(), target, bodies[i%*distinct])
			latencyMS := float64(time.Since(t0)) / float64(time.Millisecond)
			var se *client.StatusError
			switch {
			case err == nil:
				outcomes[i] = outcome{
					status:    resp.Status,
					cache:     resp.Cache,
					body:      resp.Body,
					latencyMS: latencyMS,
				}
			case errors.As(err, &se):
				outcomes[i] = outcome{status: se.Status, body: se.Body, latencyMS: latencyMS}
			default:
				outcomes[i] = outcome{err: err, latencyMS: latencyMS}
			}
		}
		sendBatch := func(g int) {
			lo, hi := g**batch, min((g+1)**batch, *requests)
			t0 := time.Now()
			resp, err := cl.Post(context.Background(), batchTarget, batchBodies[g])
			perItemMS := float64(time.Since(t0)) / float64(time.Millisecond) / float64(hi-lo)
			fill := func(o outcome) {
				o.latencyMS = perItemMS
				for i := lo; i < hi; i++ {
					outcomes[i] = o
				}
			}
			var se *client.StatusError
			switch {
			case err == nil:
				var br serve.BatchResponse
				if uerr := json.Unmarshal(resp.Body, &br); uerr != nil {
					fill(outcome{err: fmt.Errorf("batch envelope: %w", uerr)})
					return
				}
				if len(br.Results) != hi-lo {
					fill(outcome{err: fmt.Errorf("batch returned %d results for %d items", len(br.Results), hi-lo)})
					return
				}
				for i := lo; i < hi; i++ {
					res := br.Results[i-lo]
					outcomes[i] = outcome{status: res.Status, cache: res.Cache, body: res.Body, latencyMS: perItemMS}
				}
			case errors.As(err, &se):
				fill(outcome{status: se.Status, body: se.Body})
			default:
				fill(outcome{err: err})
			}
		}
		jobs := *requests
		send := sendSingleton
		if *batch > 0 {
			jobs = len(batchBodies)
			send = sendBatch
		}
		var wg sync.WaitGroup
		start := time.Now() // wall-clock: throughput/latency reporting only
		for c := 0; c < *concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= jobs {
						return
					}
					send(j)
				}
			}()
		}
		wg.Wait()
		return outcomes, time.Since(start)
	}

	// tally splits the outcomes into ok/failed/hit counts and the latency
	// sample, reporting every failure to stderr.
	tally := func(outcomes []outcome) (ok, failed, hits int, latencies []float64) {
		latencies = make([]float64, 0, *requests)
		for i, o := range outcomes {
			switch {
			case o.err != nil:
				failed++
				fmt.Fprintf(stderr, "request %d: %v\n", i, o.err)
			case o.status != http.StatusOK:
				failed++
				fmt.Fprintf(stderr, "request %d: status %d: %s", i, o.status, o.body)
			default:
				ok++
				latencies = append(latencies, o.latencyMS)
				if o.cache == "hit" {
					hits++
				}
			}
		}
		return ok, failed, hits, latencies
	}

	// reportLatency prints the latency quantile line (per item in batch mode).
	reportLatency := func(latencies []float64) error {
		if len(latencies) == 0 {
			return nil
		}
		qs, err := stats.Quantiles(latencies, 0.5, 0.9, 0.99, 1)
		if err != nil {
			return err
		}
		label := "latency ms"
		if *batch > 0 {
			label = "per-item latency ms"
		}
		fmt.Fprintf(stdout, "%s: p50 %.3f p90 %.3f p99 %.3f max %.3f (observational)\n",
			label, qs[0], qs[1], qs[2], qs[3])
		return nil
	}

	// verifyStream checks the determinism guarantee over one drive's
	// outcomes — identical bodies must have produced byte-identical
	// responses, cache hit or miss — and returns the per-distinct reference
	// bodies (the sweep compares them across backend counts). In batch mode
	// the reference is a fresh singleton response per distinct body: a
	// batch item's bytes must equal the singleton response minus its
	// trailing newline (the envelope carries no framing).
	verifyStream := func(cl *client.Client, base string, outcomes []outcome) ([][]byte, error) {
		reference := make([][]byte, *distinct)
		if *batch > 0 {
			for k, body := range bodies {
				resp, err := cl.Post(context.Background(), base+"/v1/"+*endpoint, body)
				if err != nil {
					return nil, fmt.Errorf("verify: singleton reference %d: %w", k, err)
				}
				reference[k] = bytes.TrimSuffix(resp.Body, []byte("\n"))
			}
		}
		for i, o := range outcomes {
			if o.err != nil || o.status != http.StatusOK {
				continue
			}
			k := i % *distinct
			if reference[k] == nil {
				reference[k] = o.body
				continue
			}
			if !bytes.Equal(reference[k], o.body) {
				if *batch > 0 {
					return nil, fmt.Errorf("request %d: batch item differs from the singleton response to the identical body", i)
				}
				return nil, fmt.Errorf("request %d: response differs from an earlier response to the identical body", i)
			}
		}
		return reference, nil
	}

	if sweepCounts != nil {
		if err := runSweep(sweepCounts, sweepDeps{
			drive: drive, tally: tally, reportLatency: reportLatency, verifyStream: verifyStream,
			maxRetries: maxRetries, backoff: *backoff, timeout: *timeout, seed: *seed,
			requests: *requests, batch: *batch, verify: *verify, tracer: tracer,
		}, stdout); err != nil {
			return err
		}
		if traceSink != nil {
			if err := traceSink.Err(); err != nil {
				return fmt.Errorf("writing -trace-out: %w", err)
			}
		}
		return nil
	}

	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	// One registry for the whole run: the resilient clients and (when
	// -faults is set) the fault proxy record into it, so the final
	// resilience line pairs injected faults with the retries they cost.
	reg := obs.NewMetrics()
	if *faultSpec != "" {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return usagef("-faults: %v", err)
		}
		proxyBase, err := startFaultProxy(spec, base, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "schedload: fault proxy %s -> %s (%s)\n", proxyBase, base, spec)
		base = proxyBase
	}
	target := base + "/v1/" + *endpoint
	batchTarget := base + "/v1/batch"

	// A zero-value http.Client has no timeout: one stalled connection would
	// hang the generator forever. The resilient client bounds every attempt
	// and retries transient failures; it is shared so the breaker sees the
	// whole request stream.
	cl := client.New(client.Options{
		MaxRetries:  maxRetries,
		BaseBackoff: *backoff,
		Timeout:     *timeout,
		Seed:        *seed,
		Metrics:     reg,
		Tracer:      tracer,
	})
	outcomes, elapsed := drive(cl, base)
	ok, failed, hits, latencies := tally(outcomes)

	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if *batch > 0 {
		fmt.Fprintf(stdout, "schedload: %d requests to %s in %d batches of up to %d (%dx%d %s, heuristic %s, ties %s, seed %d, %d distinct, concurrency %d)\n",
			*requests, batchTarget, len(batchBodies), *batch, *tasks, *machines, class.Label(), *heuristic, *ties, *seed, *distinct, *concurrency)
	} else {
		fmt.Fprintf(stdout, "schedload: %d requests to %s (%dx%d %s, heuristic %s, ties %s, seed %d, %d distinct, concurrency %d)\n",
			*requests, target, *tasks, *machines, class.Label(), *heuristic, *ties, *seed, *distinct, *concurrency)
	}
	fmt.Fprintf(stdout, "responses: %d ok, %d errors, %d cache hits\n", ok, failed, hits)
	fmt.Fprintf(stdout, "resilience: %d attempts, %d retries, %d breaker fast-fails, %d injected faults\n",
		counters["client.attempts_total"], counters["client.retries_total"],
		counters["client.fastfail_total"], counters["faults.injected_total"])
	fmt.Fprintf(stdout, "throughput: %.1f req/s (%.1f ms total, observational)\n",
		float64(*requests)/elapsed.Seconds(), float64(elapsed)/float64(time.Millisecond))
	if err := reportLatency(latencies); err != nil {
		return err
	}

	if *verify {
		if _, err := verifyStream(cl, base, outcomes); err != nil {
			return err
		}
		if *batch > 0 {
			fmt.Fprintf(stdout, "verify: %d distinct bodies -> batch items byte-identical to singleton responses\n", *distinct)
		} else {
			fmt.Fprintf(stdout, "verify: %d distinct bodies -> byte-identical responses\n", *distinct)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, *requests)
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
	}
	return nil
}

// sweepDeps bundles the drive/tally/verify machinery and the flag values the
// -backends sweep needs, so runSweep stays a plain function.
type sweepDeps struct {
	drive         func(cl *client.Client, base string) ([]outcome, time.Duration)
	tally         func(outcomes []outcome) (ok, failed, hits int, latencies []float64)
	reportLatency func(latencies []float64) error
	verifyStream  func(cl *client.Client, base string, outcomes []outcome) ([][]byte, error)

	maxRetries       int
	backoff, timeout time.Duration
	seed             uint64
	requests, batch  int
	verify           bool
	tracer           *obs.Tracer
}

// runSweep drives the identical deterministic stream at a fresh in-process
// cluster gateway per backend count and, with verify, proves the responses
// are byte-identical across every count — the horizontal-scale guarantee,
// measured from the outside.
func runSweep(counts []int, d sweepDeps, stdout io.Writer) error {
	var crossRef [][]byte // per-distinct reference bodies from the first count
	for _, n := range counts {
		ref, err := sweepLeg(n, d, stdout)
		if err != nil {
			return err
		}
		if d.verify {
			if crossRef == nil {
				crossRef = ref
				continue
			}
			for k := range ref {
				if crossRef[k] == nil || ref[k] == nil {
					continue
				}
				if !bytes.Equal(crossRef[k], ref[k]) {
					return fmt.Errorf("sweep: distinct body %d: %d-backend response differs from the %d-backend response",
						k, n, counts[0])
				}
			}
		}
	}
	if d.verify {
		labels := make([]string, len(counts))
		for i, n := range counts {
			labels[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(stdout, "sweep: responses byte-identical across backend counts %s\n", strings.Join(labels, ","))
	}
	return nil
}

// sweepLeg runs one backend count: boot the cluster + gateway, drive the
// stream, report, and (with verify) return the per-distinct reference
// bodies. Teardown is deferred so a failed leg — drive errors, a latency
// reporting failure, a verify mismatch — still stops the listener, drains
// the gateway and closes every backend; an early return must never leak the
// stack's goroutines.
func sweepLeg(n int, d sweepDeps, stdout io.Writer) (ref [][]byte, err error) {
	local, err := cluster.StartLocal(n, serve.Options{Workers: 2, QueueDepth: 256})
	if err != nil {
		return nil, fmt.Errorf("sweep %d backends: %w", n, err)
	}
	var gw *cluster.Gateway
	var hs *http.Server
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if hs != nil {
			hs.Close()
		}
		if gw != nil {
			gw.Drain(ctx)
		}
		if cerr := local.Close(); cerr != nil && err == nil {
			ref, err = nil, fmt.Errorf("sweep %d backends: close: %w", n, cerr)
		}
	}()
	gw, err = cluster.NewGateway(cluster.Options{
		Backends: local.Backends(),
		Client: client.Options{
			MaxRetries:  d.maxRetries,
			BaseBackoff: d.backoff,
			Timeout:     d.timeout,
			Seed:        d.seed,
			HTTPClient:  &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("sweep %d backends: %w", n, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sweep %d backends: %w", n, err)
	}
	hs = &http.Server{Handler: gw.Handler(), ErrorLog: log.New(io.Discard, "", 0)}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	cl := client.New(client.Options{
		MaxRetries:  d.maxRetries,
		BaseBackoff: d.backoff,
		Timeout:     d.timeout,
		Seed:        d.seed,
		Metrics:     obs.NewMetrics(),
		Tracer:      d.tracer,
		HTTPClient:  &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	outcomes, elapsed := d.drive(cl, base)
	ok, failed, hits, latencies := d.tally(outcomes)
	mode := "singleton requests"
	if d.batch > 0 {
		mode = fmt.Sprintf("batches of up to %d", d.batch)
	}
	fmt.Fprintf(stdout, "schedload: sweep %d backend(s): %d requests via gateway %s (%s)\n",
		n, d.requests, base, mode)
	fmt.Fprintf(stdout, "responses: %d ok, %d errors, %d cache hits\n", ok, failed, hits)
	fmt.Fprintf(stdout, "throughput: %.1f req/s (%.1f ms total, observational)\n",
		float64(d.requests)/elapsed.Seconds(), float64(elapsed)/float64(time.Millisecond))
	if err := d.reportLatency(latencies); err != nil {
		return nil, err
	}
	if failed > 0 {
		return nil, fmt.Errorf("sweep %d backends: %d of %d requests failed", n, failed, d.requests)
	}
	if d.verify {
		// Verify while the stack is still up: batch mode posts fresh
		// singleton references through the gateway.
		if ref, err = d.verifyStream(cl, base, outcomes); err != nil {
			return nil, fmt.Errorf("sweep %d backends: %w", n, err)
		}
	}
	return ref, nil
}

// parseCounts parses the -backends sweep spec: comma-separated positive
// backend counts.
func parseCounts(spec string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-backends: bad count %q (want positive integers, e.g. 1,2,4)", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// startFaultProxy listens on an ephemeral loopback port and relays every
// request to base through the seeded fault injector, recording faults.*
// counters into reg. The listener lives for the process: schedload is a
// short-lived tool.
func startFaultProxy(spec faults.Spec, base string, reg *obs.Metrics) (string, error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("-addr: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	// Severed client connections mid-relay are the injector's job, not
	// noise for the terminal.
	proxy.ErrorLog = log.New(io.Discard, "", 0)
	go http.Serve(ln, faults.New(spec, proxy, reg))
	return "http://" + ln.Addr().String(), nil
}

// classByLabel resolves an etc workload class from its conventional label.
func classByLabel(label string) (etc.Class, error) {
	var labels []string
	for _, c := range etc.AllClasses() {
		if c.Label() == label {
			return c, nil
		}
		labels = append(labels, c.Label())
	}
	return etc.Class{}, fmt.Errorf("unknown -class %q (available: %s)", label, strings.Join(labels, ", "))
}
