package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/serve"
)

// startServer runs a serve.Server behind a real HTTP listener for the load
// generator to hit.
func startServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	return srv, ts
}

func TestLoadAgainstServer(t *testing.T) {
	_, ts := startServer(t, serve.Options{})
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", ts.URL,
		"-requests", "24", "-concurrency", "4",
		"-tasks", "8", "-machines", "3", "-distinct", "3",
		"-heuristic", "sufferage", "-ties", "random", "-seed", "7",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"24 ok, 0 errors",
		"latency ms: p50",
		"verify: 3 distinct bodies -> byte-identical responses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	// 3 distinct bodies, 24 requests: at least 21 must be cache hits.
	if strings.Contains(out, " 0 cache hits") {
		t.Errorf("expected cache hits in:\n%s", out)
	}
}

// TestLoadBatchMode groups the stream into /v1/batch posts: every item must
// succeed, per-item latency quantiles are reported, and -verify proves each
// batch item byte-identical to a singleton response for the same body.
func TestLoadBatchMode(t *testing.T) {
	_, ts := startServer(t, serve.Options{})
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", ts.URL,
		"-requests", "24", "-batch", "7", "-concurrency", "2",
		"-tasks", "8", "-machines", "3", "-distinct", "3",
		"-heuristic", "sufferage", "-seed", "9",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"24 requests", "in 4 batches of up to 7",
		"24 ok, 0 errors",
		"per-item latency ms: p50",
		"verify: 3 distinct bodies -> batch items byte-identical to singleton responses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	// 3 distinct workloads across 24 items: the warm items must be hits.
	if strings.Contains(out, " 0 cache hits") {
		t.Errorf("expected cache hits in:\n%s", out)
	}
}

func TestLoadMapEndpoint(t *testing.T) {
	_, ts := startServer(t, serve.Options{})
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"), // bare host:port form
		"-endpoint", "map",
		"-requests", "6", "-concurrency", "2",
		"-tasks", "4", "-machines", "2", "-distinct", "2",
		"-class", "lolo-c",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "/v1/map") {
		t.Errorf("stdout missing endpoint: %s", stdout.String())
	}
}

// TestStalledServerCostsBoundedTime is the regression test for the
// zero-value http.Client bug: a daemon that accepts connections but never
// answers must cost the generator its per-attempt timeout budget, not hang
// it forever.
func TestStalledServerCostsBoundedTime(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	defer close(stall) // LIFO: release the handlers before ts.Close waits on them

	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", ts.URL,
		"-requests", "2", "-concurrency", "2",
		"-tasks", "4", "-machines", "2", "-distinct", "1",
		"-timeout", "100ms", "-retries", "1", "-backoff", "1ms",
	}
	start := time.Now()
	err := run(args, &stdout, &stderr)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("run against a stalled server: want error, got ok\nstdout: %s", stdout.String())
	}
	if !strings.Contains(err.Error(), "2 of 2 requests failed") {
		t.Errorf("err = %v, want both requests failed", err)
	}
	// 2 attempts x 100ms each plus backoff: far under 5s; without the
	// per-attempt timeout this test would hang until the suite deadline.
	if elapsed > 5*time.Second {
		t.Errorf("run took %v against a stalled server, want bounded by the -timeout budget", elapsed)
	}
}

// TestFaultProxyRecovers drives the generator through its in-process fault
// proxy: injected rejections, drops and truncations must cost retries, not
// correctness — every request succeeds and the verify pass still proves
// byte-identical responses.
func TestFaultProxyRecovers(t *testing.T) {
	_, ts := startServer(t, serve.Options{})
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", ts.URL,
		"-requests", "24", "-concurrency", "4",
		"-tasks", "6", "-machines", "3", "-distinct", "2",
		"-retries", "8", "-backoff", "1ms", "-timeout", "2s",
		"-faults", "seed=3,reject=0.15:503:1,drop=0.1,truncate=0.1",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"schedload: fault proxy",
		"24 ok, 0 errors",
		"verify: 2 distinct bodies -> byte-identical responses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " 0 injected faults") {
		t.Errorf("fault proxy injected nothing:\n%s", out)
	}
	if strings.Contains(out, " 0 retries") {
		t.Errorf("resilient client never retried:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                  // missing -addr
		{"-addr", "x", "-endpoint", "nope"}, // bad endpoint
		{"-addr", "x", "-class", "zz-q"},    // bad class
		{"-addr", "x", "-requests", "0"},    // non-positive
		{"-addr", "x", "-retries", "-1"},    // negative retries
		{"-addr", "x", "-batch", "-1"},      // negative batch size
		{"-addr", "x", "-faults", "drop=2"}, // bad fault spec
		{"-nope"},                           // unknown flag
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%v): want error", args)
			continue
		}
		if exitCode(err) != 2 {
			t.Errorf("run(%v): exit code %d, want 2 (usage)", args, exitCode(err))
		}
		if strings.Contains(stdout.String(), "Usage") {
			t.Errorf("run(%v): usage leaked to stdout", args)
		}
	}
	// Runtime failures (an unreachable daemon, failed requests) stay exit 1.
	var stdout, stderr bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-requests", "1", "-retries", "0", "-timeout", "100ms"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("run against an unreachable daemon: want error")
	}
	if exitCode(err) != 1 {
		t.Errorf("exitCode(runtime failure) = %d, want 1", exitCode(err))
	}
}

// TestBackendsSweep runs the capacity sweep at 1 and 2 in-process backends:
// every request succeeds at every count and -verify proves the responses
// byte-identical across counts.
func TestBackendsSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-backends", "1,2",
		"-requests", "16", "-concurrency", "4",
		"-tasks", "6", "-machines", "3", "-distinct", "3",
		"-seed", "5",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s\nstdout: %s", err, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"schedload: sweep 1 backend(s): 16 requests via gateway http://",
		"schedload: sweep 2 backend(s): 16 requests via gateway http://",
		"sweep: responses byte-identical across backend counts 1,2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "responses: 16 ok, 0 errors"); n != 2 {
		t.Errorf("%d clean response lines, want 2:\n%s", n, out)
	}
}

// TestBackendsSweepBatchMode sweeps with the stream grouped into /v1/batch
// posts; per-item verify against singleton references must hold at each
// count and across counts.
func TestBackendsSweepBatchMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-backends", "1,3",
		"-requests", "12", "-batch", "5", "-concurrency", "2",
		"-tasks", "5", "-machines", "2", "-distinct", "2",
		"-seed", "9",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s\nstdout: %s", err, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"per-item latency ms: p50",
		"sweep: responses byte-identical across backend counts 1,3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestBackendsSweepFailedLegTearsDown is the regression test for the sweep
// teardown bug: a leg whose verify pass fails must still stop its listener,
// drain the gateway and close every backend before runSweep returns the
// error. Without the deferred teardown this test leaks the whole cluster's
// goroutines (and the package TestMain gate fails).
func TestBackendsSweepFailedLegTearsDown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var stdout bytes.Buffer
	d := sweepDeps{
		drive: func(cl *client.Client, base string) ([]outcome, time.Duration) {
			// One real post so the stack is demonstrably up and serving.
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Errorf("sweep stack not serving: %v", err)
			} else {
				resp.Body.Close()
			}
			return []outcome{{status: http.StatusOK, body: []byte("x")}}, time.Millisecond
		},
		tally: func(outcomes []outcome) (int, int, int, []float64) {
			return len(outcomes), 0, 0, []float64{1}
		},
		reportLatency: func([]float64) error { return nil },
		verifyStream: func(*client.Client, string, []outcome) ([][]byte, error) {
			return nil, fmt.Errorf("stubbed verify failure")
		},
		maxRetries: -1, backoff: time.Millisecond, timeout: 2 * time.Second,
		seed: 1, requests: 1, verify: true,
	}
	err := runSweep([]int{2}, d, &stdout)
	if err == nil || !strings.Contains(err.Error(), "stubbed verify failure") {
		t.Fatalf("runSweep = %v, want the stubbed verify failure", err)
	}
	// The failed leg must not leak its cluster: poll until the goroutine
	// count returns to (near) the pre-sweep baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("failed sweep leg leaked goroutines: %d, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackendsFlagValidation pins the sweep's flag grammar and conflicts.
func TestBackendsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"with addr", []string{"-backends", "1,2", "-addr", "x"}, "-addr"},
		{"with faults", []string{"-backends", "1,2", "-faults", "drop=0.5"}, "-faults"},
		{"zero count", []string{"-backends", "0"}, "bad count"},
		{"junk count", []string{"-backends", "1,two"}, "bad count"},
		{"negative count", []string{"-backends", "-1"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: err %q, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}
