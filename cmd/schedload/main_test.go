package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startServer runs a serve.Server behind a real HTTP listener for the load
// generator to hit.
func startServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	return srv, ts
}

func TestLoadAgainstServer(t *testing.T) {
	_, ts := startServer(t, serve.Options{})
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", ts.URL,
		"-requests", "24", "-concurrency", "4",
		"-tasks", "8", "-machines", "3", "-distinct", "3",
		"-heuristic", "sufferage", "-ties", "random", "-seed", "7",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"24 ok, 0 errors",
		"latency ms: p50",
		"verify: 3 distinct bodies -> byte-identical responses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	// 3 distinct bodies, 24 requests: at least 21 must be cache hits.
	if strings.Contains(out, " 0 cache hits") {
		t.Errorf("expected cache hits in:\n%s", out)
	}
}

func TestLoadMapEndpoint(t *testing.T) {
	_, ts := startServer(t, serve.Options{})
	var stdout, stderr bytes.Buffer
	args := []string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"), // bare host:port form
		"-endpoint", "map",
		"-requests", "6", "-concurrency", "2",
		"-tasks", "4", "-machines", "2", "-distinct", "2",
		"-class", "lolo-c",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "/v1/map") {
		t.Errorf("stdout missing endpoint: %s", stdout.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                  // missing -addr
		{"-addr", "x", "-endpoint", "nope"}, // bad endpoint
		{"-addr", "x", "-class", "zz-q"},    // bad class
		{"-addr", "x", "-requests", "0"},    // non-positive
		{"-nope"},                           // unknown flag
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v): want error", args)
		}
		if strings.Contains(stdout.String(), "Usage") {
			t.Errorf("run(%v): usage leaked to stdout", args)
		}
	}
}
