package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

func TestSmallSweep(t *testing.T) {
	out, err := runCLI(t,
		"-heuristics", "mct,sufferage",
		"-classes", "hihi-i",
		"-tasks", "8", "-machines", "3", "-trials", "10")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mct/det/hihi-i/8x3", "mct/rnd/hihi-i/8x3", "sufferage/det"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Theorem: deterministic mct row must report p=0.0000 changed.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "mct/det") && !strings.Contains(line, "p=0.0000") {
			t.Errorf("deterministic mct changed: %s", line)
		}
	}
}

func TestSweepAllClasses(t *testing.T) {
	out, err := runCLI(t,
		"-heuristics", "met",
		"-classes", "all",
		"-tasks", "6", "-machines", "3", "-trials", "3")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "met/det"); got != 12 {
		t.Fatalf("expected 12 deterministic cells (one per class), got %d", got)
	}
}

func TestSweepSeededVariant(t *testing.T) {
	out, err := runCLI(t,
		"-heuristics", "kpb",
		"-classes", "hihi-i",
		"-tasks", "6", "-machines", "3", "-trials", "5",
		"-seeded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seeded-kpb") {
		t.Fatalf("seeded cells missing:\n%s", out)
	}
}

func TestSweepGridWorkloads(t *testing.T) {
	out, err := runCLI(t,
		"-heuristics", "mct",
		"-classes", "hihi-i",
		"-tasks", "8", "-machines", "3", "-trials", "20",
		"-grid", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "grid3") {
		t.Fatalf("grid label missing:\n%s", out)
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := runCLI(t, "-classes", "nope"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := runCLI(t, "-heuristics", "bogus", "-classes", "hihi-i", "-trials", "1"); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := runCLI(t, "-notaflag"); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSweepJSONArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if _, err := runCLI(t,
		"-heuristics", "mct", "-classes", "hihi-i",
		"-tasks", "6", "-machines", "3", "-trials", "4",
		"-json", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]interface{}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("archive invalid: %v", err)
	}
	if len(records) != 2 { // det + rnd
		t.Fatalf("got %d records, want 2", len(records))
	}
}

func TestMetricsFlag(t *testing.T) {
	out, err := runCLI(t,
		"-heuristics", "mct",
		"-classes", "hihi-i",
		"-tasks", "6", "-machines", "3", "-trials", "8",
		"-metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"harness telemetry:",
		"counter   sim.trials",
		"gauge     sim.trials_per_sec",
		"gauge     sim.worker_utilization",
		"histogram sim.trial_ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
	// Two cells (det + rnd) of 8 trials each share the registry.
	if !strings.Contains(out, "counter   sim.trials                   16") {
		t.Errorf("sim.trials should accumulate across cells:\n%s", out)
	}
}

func TestPProfFlag(t *testing.T) {
	// Port 0 lets the kernel pick a free port; the sweep must still run.
	out, err := runCLI(t,
		"-heuristics", "mct",
		"-classes", "hihi-i",
		"-tasks", "6", "-machines", "3", "-trials", "4",
		"-pprof", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mct/det/hihi-i/6x3") {
		t.Errorf("sweep output missing results:\n%s", out)
	}
	if _, err := runCLI(t, "-pprof", "not-an-address", "-trials", "1"); err == nil {
		t.Error("invalid -pprof address accepted")
	}
}
