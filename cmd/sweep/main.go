// Command sweep runs the Monte Carlo study: for every selected heuristic ×
// workload class × tie policy it measures how often the iterative technique
// changes the mapping, how often it worsens the makespan, and what it does
// to machine completion times.
//
// Usage:
//
//	sweep                                  # default grid, 200 trials per cell
//	sweep -heuristics mct,sufferage -trials 1000 -tasks 64 -machines 8
//	sweep -classes hihi-i,lolo-c -seeded
//	sweep -metrics -pprof 127.0.0.1:6060   # run telemetry + live profiling
//
// -metrics prints a snapshot of the harness telemetry (per-trial wall-time
// histogram, worker utilization, trials/sec) after the table; -pprof serves
// stdlib net/http/pprof on the given address for the duration of the sweep
// (off by default). Neither affects the measured results: wall-clock is
// observational only and every trial remains deterministic per seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof registers the stdlib profiling handlers
	"os"
	"strings"

	"repro/internal/etc"
	"repro/internal/heuristics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		names    = fs.String("heuristics", strings.Join(heuristics.Names(), ","), "comma-separated heuristic names")
		classes  = fs.String("classes", "hihi-i,lolo-c", "comma-separated class labels, or 'all'")
		tasks    = fs.Int("tasks", 32, "tasks per workload")
		machines = fs.Int("machines", 8, "machines per workload")
		trials   = fs.Int("trials", 200, "trials per cell")
		seed     = fs.Uint64("seed", 20070326, "experiment seed")
		seeded   = fs.Bool("seeded", false, "also run seeded variants")
		grid     = fs.Int("grid", 0, "draw ETC entries from integers 1..grid (tie-dense) instead of the class generator")
		jsonPath = fs.String("json", "", "also archive results as JSON records at this path")
		metrics  = fs.Bool("metrics", false, "print a harness telemetry snapshot after the sweep")
		pprof    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); off when empty")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprof != "" {
		ln, err := net.Listen("tcp", *pprof)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer ln.Close()
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	}
	var reg *obs.Metrics
	if *metrics {
		reg = obs.NewMetrics()
	}

	var classList []etc.Class
	if *classes == "all" {
		classList = etc.AllClasses()
	} else {
		byLabel := map[string]etc.Class{}
		for _, c := range etc.AllClasses() {
			byLabel[c.Label()] = c
		}
		for _, l := range strings.Split(*classes, ",") {
			c, ok := byLabel[strings.TrimSpace(l)]
			if !ok {
				return fmt.Errorf("unknown class %q", l)
			}
			classList = append(classList, c)
		}
	}
	nameList := strings.Split(*names, ",")

	tb := table.New(
		fmt.Sprintf("iterative-technique outcomes: %d trials/cell, %dx%d workloads, seed %d",
			*trials, *tasks, *machines, *seed),
		"cell", "changed", "makespan worse", "machines improved", "machines worsened",
		"mean CT delta", "makespan delta")

	var records []report.StudyRecord
	addCell := func(cfg sim.Config) error {
		r, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		records = append(records, report.FromStudy(r))
		tb.AddRow(r.Config.Label(),
			r.Changed.String(),
			r.MakespanIncreased.String(),
			fmt.Sprintf("%.3f", r.ImprovedMachines.Value()),
			fmt.Sprintf("%.3f", r.WorsenedMachines.Value()),
			fmt.Sprintf("%+.4f ± %.4f", r.RelMeanDelta.Mean, r.RelMeanDelta.ConfidenceInterval95()),
			fmt.Sprintf("%+.4f", r.RelMakespanDelta.Mean))
		return nil
	}

	for _, name := range nameList {
		name = strings.TrimSpace(name)
		for _, class := range classList {
			for _, random := range []bool{false, true} {
				cfg := sim.Config{
					HeuristicName: name, RandomTies: random, Class: class,
					IntegerGrid: *grid,
					Tasks:       *tasks, Machines: *machines, Trials: *trials, Seed: *seed,
					Metrics: reg,
				}
				if err := addCell(cfg); err != nil {
					return err
				}
				if *seeded {
					cfg.Seeded = true
					if err := addCell(cfg); err != nil {
						return err
					}
				}
			}
		}
	}
	fmt.Fprint(stdout, tb.String())
	if reg != nil {
		fmt.Fprintf(stdout, "\nharness telemetry:\n%s", reg.Snapshot().Text())
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f, records); err != nil {
			return err
		}
	}
	return nil
}
