package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

func TestImmediateMode(t *testing.T) {
	out, err := runCLI(t, "-mode", "immediate", "-rule", "swa", "-tasks", "40", "-machines", "4")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"makespan:", "mean response:", "mapping events:  40", "machine finish times:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBatchMode(t *testing.T) {
	out, err := runCLI(t, "-mode", "batch", "-heuristic", "sufferage", "-tasks", "30", "-machines", "3", "-interval", "200")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "makespan:") {
		t.Fatalf("no result:\n%s", out)
	}
}

func TestCompareMode(t *testing.T) {
	out, err := runCLI(t, "-compare", "-tasks", "30", "-machines", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"immediate/mct", "immediate/swa", "batch/min-min", "batch/sufferage"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := runCLI(t, "-tasks", "20", "-machines", "3", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCLI(t, "-tasks", "20", "-machines", "3", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different simulations")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "sideways"},
		{"-mode", "immediate", "-rule", "bogus"},
		{"-mode", "batch", "-heuristic", "bogus"},
		{"-class", "nope"},
		{"-interarrival", "0"},
		{"-notaflag"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
