// Command dynsim runs the dynamic-arrival simulator (the environment the
// paper's SWA, K-Percent Best and Sufferage heuristics were designed for):
// tasks arrive as a Poisson process and are mapped online, either one-by-one
// on arrival (immediate mode) or in batches at mapping events (batch mode).
//
// Usage:
//
//	dynsim -mode immediate -rule swa -tasks 200 -machines 8
//	dynsim -mode batch -heuristic min-min -interval 100
//	dynsim -compare          # all rules/heuristics side by side
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dynamic"
	"repro/internal/etc"
	"repro/internal/heuristics"
	"repro/internal/rng"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dynsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode      = fs.String("mode", "immediate", "immediate or batch")
		rule      = fs.String("rule", "mct", "immediate rule: mct, met, olb, kpb, swa")
		heuristic = fs.String("heuristic", "min-min", "batch heuristic (registry name)")
		interval  = fs.Float64("interval", 100, "batch mapping interval")
		tasks     = fs.Int("tasks", 200, "number of tasks")
		machines  = fs.Int("machines", 8, "number of machines")
		inter     = fs.Float64("interarrival", 100, "mean inter-arrival time (Poisson)")
		class     = fs.String("class", "hihi-i", "workload class label")
		seed      = fs.Uint64("seed", 1, "workload seed")
		compare   = fs.Bool("compare", false, "run every mode/rule on the same workload")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := classByLabel(*class)
	if err != nil {
		return err
	}
	w, err := dynamic.GeneratePoissonWorkload(c, *tasks, *machines, *inter, rng.New(*seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload: %d tasks, %d machines, class %s, mean inter-arrival %g, seed %d\n\n",
		*tasks, *machines, *class, *inter, *seed)

	if *compare {
		return runComparison(w, *interval, stdout)
	}

	var res *dynamic.Result
	switch *mode {
	case "immediate":
		res, err = dynamic.SimulateImmediate(w, dynamic.ImmediateConfig{Rule: dynamic.ImmediateRule(*rule)})
	case "batch":
		h, herr := heuristics.ByName(*heuristic, *seed)
		if herr != nil {
			return herr
		}
		res, err = dynamic.SimulateBatch(w, dynamic.BatchConfig{Heuristic: h, Interval: *interval})
	default:
		return fmt.Errorf("unknown -mode %q (want immediate or batch)", *mode)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "makespan:        %.6g\n", res.Makespan)
	fmt.Fprintf(stdout, "mean response:   %.6g\n", res.MeanResponse)
	fmt.Fprintf(stdout, "mapping events:  %d\n", res.MappingEvents)
	fmt.Fprintln(stdout, "machine finish times:")
	for m, f := range res.MachineFinish {
		fmt.Fprintf(stdout, "  m%-3d %.6g\n", m, f)
	}
	return nil
}

func runComparison(w dynamic.Workload, interval float64, stdout io.Writer) error {
	tb := table.New("mode comparison", "mode", "makespan", "mean response", "events")
	for _, rule := range []dynamic.ImmediateRule{
		dynamic.ImmediateMCT, dynamic.ImmediateMET, dynamic.ImmediateOLB,
		dynamic.ImmediateKPB, dynamic.ImmediateSWA,
	} {
		res, err := dynamic.SimulateImmediate(w, dynamic.ImmediateConfig{Rule: rule})
		if err != nil {
			return err
		}
		tb.AddRow("immediate/"+string(rule), res.Makespan, res.MeanResponse, res.MappingEvents)
	}
	for _, name := range []string{"min-min", "max-min", "sufferage"} {
		h, err := heuristics.ByName(name, 1)
		if err != nil {
			return err
		}
		res, err := dynamic.SimulateBatch(w, dynamic.BatchConfig{Heuristic: h, Interval: interval})
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("batch/%s@%g", name, interval), res.Makespan, res.MeanResponse, res.MappingEvents)
	}
	fmt.Fprint(stdout, tb.String())
	return nil
}

func classByLabel(label string) (etc.Class, error) {
	for _, c := range etc.AllClasses() {
		if c.Label() == label {
			return c, nil
		}
	}
	var labels []string
	for _, c := range etc.AllClasses() {
		labels = append(labels, c.Label())
	}
	return etc.Class{}, fmt.Errorf("unknown class %q (available: %v)", label, labels)
}
