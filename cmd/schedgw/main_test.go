package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// TestSelfcheck runs the full cluster smoke in-process: 3 local backends,
// gateway on an ephemeral port, byte-identity against a single instance,
// batch split/merge, kill/failover/revive, traces, statusz, cluster chaos,
// drain.
func TestSelfcheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-selfcheck"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -selfcheck: %v\nstderr: %s\nstdout: %s", err, stderr.String(), stdout.String())
	}
	for _, want := range []string{
		"[ok  ] healthz aggregates all 3 backends",
		"[ok  ] pinned Table-1 trace through the cluster is byte-identical to a single instance; repeat routes to the warm cache",
		"[ok  ] /v1/batch splits 6 items across backends and merges byte-identically, 422 isolated in place",
		"failover computes identical bytes; revive: key returns to the owner's warm cache",
		"[ok  ] 5 gateway traces well-formed with route/backend_wait/batch_merge/write stages",
		"conserved outcomes, 1 failover(s)",
		"[ok  ] cluster chaos scenario backend-rejoin: 7 invariants hold",
		"[ok  ] drained",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestSelfcheckRejectsBackendFlags pins the flag exclusivity.
func TestSelfcheckRejectsBackendFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-selfcheck", "-local", "2"}, &stdout, &stderr); err == nil {
		t.Fatal("-selfcheck -local accepted")
	}
	if err := run([]string{"-selfcheck", "-backends", "a=http://x"}, &stdout, &stderr); err == nil {
		t.Fatal("-selfcheck -backends accepted")
	}
}

// TestParseBackends covers the -backends grammar.
func TestParseBackends(t *testing.T) {
	got, err := parseBackends("a=http://127.0.0.1:8081, b=http://127.0.0.1:8082/")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Backend{
		{Name: "a", URL: "http://127.0.0.1:8081"},
		{Name: "b", URL: "http://127.0.0.1:8082"},
	}
	if len(got) != len(want) {
		t.Fatalf("%d backends, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backend %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "a", "=url", "a=", "a=u,b"} {
		if _, err := parseBackends(bad); err == nil {
			t.Errorf("parseBackends(%q) accepted", bad)
		}
	}
}

// TestRunNeedsMembership pins the no-configuration error — and that it is
// a usage-class error (exit 2), like every other operator mistake.
func TestRunNeedsMembership(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, &stdout, &stderr)
	if err == nil {
		t.Fatal("run with no membership accepted")
	}
	if exitCode(err) != 2 {
		t.Fatalf("exit code %d, want 2 (usage)", exitCode(err))
	}
}

// TestFlagValueValidation pins the usage-error sweep: nonsensical flag
// values fail fast with a usage-class error (exit 2) before any backend,
// listener or store is constructed, and nothing leaks to stdout.
func TestFlagValueValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring the error must mention
	}{
		{[]string{"-local", "-1"}, "-local"},
		{[]string{"-retries", "-2", "-local", "2"}, "-retries"},
		{[]string{"-drain-timeout", "0s", "-local", "2"}, "-drain-timeout"},
		{[]string{"-client-timeout", "-1s", "-local", "2"}, "-client-timeout"},
		{[]string{"-store-dir", t.TempDir(), "-backends", "a=http://x"}, "-store-dir"},
		{[]string{"-local", "2", "-backends", "a=http://x"}, "mutually exclusive"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		err := run(tc.args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%v): want usage error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): err %q, want mention of %q", tc.args, err, tc.want)
		}
		if exitCode(err) != 2 {
			t.Errorf("run(%v): exit code %d, want 2 (usage)", tc.args, exitCode(err))
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v): usage leaked to stdout: %s", tc.args, stdout.String())
		}
	}
	// Runtime failures stay exit 1; flag-syntax errors are usage.
	if got := exitCode(errOpaque{}); got != 1 {
		t.Errorf("exitCode(runtime error) = %d, want 1", got)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &stdout, &stderr); exitCode(err) != 2 {
		t.Errorf("exitCode(flag parse error) = %d, want 2", exitCode(err))
	}
}

type errOpaque struct{}

func (errOpaque) Error() string { return "runtime failure" }
