// Command schedgw is the deterministic sharded cluster gateway: an HTTP
// front over N schedd backends that routes every scheduling request to one
// backend by its canonical request key via rendezvous hashing (same key →
// same backend → warm cache), splits /v1/batch bodies per item and merges
// the fan-out byte-identically, and fails over along each key's
// deterministic preference order when backends die.
//
// The headline invariant, machine-checked by -selfcheck and the cluster
// chaos scenarios: a cluster of N backends returns byte-identical response
// bodies to a single schedd instance for every request — cache hit, miss,
// coalesced, or failed-over — under fault injection and backend loss.
//
// Usage:
//
//	schedgw -backends a=http://127.0.0.1:8081,b=http://127.0.0.1:8082 [flags]
//	schedgw -local 3 [flags]
//	schedgw -selfcheck
//
// Flags:
//
//	-addr 127.0.0.1:8090   gateway listen address (port 0 = ephemeral)
//	-backends name=url,... the cluster membership (names are the routing
//	                       identity: keep them stable across backend moves)
//	-local N               spin up N in-process schedd backends instead of
//	                       -backends (development and benchmarking)
//	-store-dir DIR         with -local: give each backend its own crash-safe
//	                       disk result tier under DIR/backend-N (internal/store)
//	-retries, -backoff, -client-timeout, -breaker-threshold
//	                       per-backend resilient-client tuning (internal/client)
//	-access-log, -trace-out, -drain-timeout
//	                       as in schedd
//
// Endpoints mirror a single schedd instance: POST /v1/map, /v1/iterate and
// /v1/batch route and relay; GET /healthz, /metricz and /statusz aggregate
// gateway state with per-backend health, metrics and breaker states.
//
// Every routed request is traced with the gateway's own stages — route
// (key derivation + rendezvous ranking), backend_wait (one per backend
// tried), batch_merge and write — extending the documented schedd stage
// set; IDs derive from the canonical request key, never the clock.
// -trace-out streams the spans as JSONL for cmd/schedtrace.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedgw:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks a command-line mistake: bad flag syntax or a nonsensical
// value. main exits 2 for these (usage), 1 for runtime failures.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.As(err, &usageError{}):
		return 2
	default:
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedgw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8090", "listen address (host:port; port 0 picks an ephemeral port)")
		backendSpec   = fs.String("backends", "", "comma-separated name=url backend list, e.g. a=http://127.0.0.1:8081,b=http://127.0.0.1:8082")
		local         = fs.Int("local", 0, "spin up this many in-process schedd backends instead of -backends")
		storeDir      = fs.String("store-dir", "", "with -local: give each backend a crash-safe disk result tier under this directory (dir/backend-N)")
		retries       = fs.Int("retries", 2, "per-backend retries before failing over (-1 disables retries)")
		backoff       = fs.Duration("backoff", 5*time.Millisecond, "per-backend base retry backoff")
		clientTimeout = fs.Duration("client-timeout", 10*time.Second, "per-attempt deadline against a backend")
		threshold     = fs.Int("breaker-threshold", 0, "per-backend circuit-breaker threshold (0 = client default, negative disables)")
		seed          = fs.Uint64("seed", 1, "seed for the per-backend clients' backoff jitter")
		drainTimeout  = fs.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight requests on shutdown")
		accessLog     = fs.String("access-log", "", "append request_done and gateway_route events as JSONL to this path")
		traceOut      = fs.String("trace-out", "", "append gateway spans as JSONL to this path (analyze with cmd/schedtrace)")
		selfcheck     = fs.Bool("selfcheck", false, "boot a local 3-backend cluster, verify the cluster-vs-singleton invariants end to end, drain, exit")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	// Validate flag values before any cluster or listener construction:
	// operator mistakes fail fast with usage (exit 2).
	switch {
	case *local < 0:
		return usagef("-local %d: must be >= 0", *local)
	case *retries < -1:
		return usagef("-retries %d: must be >= -1 (-1 disables retries)", *retries)
	case *drainTimeout <= 0:
		return usagef("-drain-timeout %s: must be positive", *drainTimeout)
	case *clientTimeout <= 0:
		return usagef("-client-timeout %s: must be positive", *clientTimeout)
	case *storeDir != "" && *local == 0:
		return usagef("-store-dir only applies to -local backends (remote backends own their own -store)")
	}
	if *selfcheck {
		if *backendSpec != "" || *local != 0 {
			return usagef("-selfcheck runs its own local cluster; drop -backends/-local")
		}
		return selfCheck(*traceOut, *accessLog, stdout)
	}

	var backends []cluster.Backend
	var localCluster *cluster.Local
	switch {
	case *local > 0 && *backendSpec != "":
		return usagef("-local and -backends are mutually exclusive")
	case *local > 0:
		var err error
		localCluster, err = cluster.StartLocalStores(*local, serve.Options{}, *storeDir)
		if err != nil {
			return err
		}
		defer localCluster.Close()
		backends = localCluster.Backends()
		for _, b := range backends {
			fmt.Fprintf(stdout, "schedgw: local backend %s on %s\n", b.Name, b.URL)
		}
	case *backendSpec != "":
		var err error
		backends, err = parseBackends(*backendSpec)
		if err != nil {
			return err
		}
	default:
		return usagef("need -backends, -local or -selfcheck")
	}

	reg := obs.NewMetrics()
	var observers obs.Multi
	var logSink *obs.JSONL
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		logSink = obs.NewJSONL(f)
		observers = append(observers, logSink)
	}
	// Tracing is always on, as in schedd: span durations feed /statusz-style
	// stage metrics on the gateway registry; -trace-out streams the spans.
	sinks := obs.Multi{obs.NewSpanMetricsObserver(reg, "gateway")}
	var traceSink *obs.JSONL
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		sinks = append(sinks, traceSink)
	}

	gw, err := cluster.NewGateway(cluster.Options{
		Backends: backends,
		Client: client.Options{
			MaxRetries:       *retries,
			BaseBackoff:      *backoff,
			Timeout:          *clientTimeout,
			Seed:             *seed,
			BreakerThreshold: *threshold,
			HTTPClient:       &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		},
		Metrics:  reg,
		Observer: observers,
		Tracer:   obs.NewTracer(sinks),
	})
	if err != nil {
		return err
	}

	if err := serveForever(gw, *addr, *drainTimeout, stdout); err != nil {
		return err
	}
	if logSink != nil {
		if err := logSink.Err(); err != nil {
			return fmt.Errorf("writing -access-log: %w", err)
		}
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			return fmt.Errorf("writing -trace-out: %w", err)
		}
	}
	return nil
}

// parseBackends parses the -backends grammar: comma-separated name=url.
func parseBackends(spec string) ([]cluster.Backend, error) {
	var out []cluster.Backend
	for _, part := range strings.Split(spec, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-backends: %q is not name=url", part)
		}
		out = append(out, cluster.Backend{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	return out, nil
}

// serveForever listens on addr and routes until SIGTERM/SIGINT, then
// drains the gateway (backends drain on their own schedule).
func serveForever(gw *cluster.Gateway, addr string, drainTimeout time.Duration, stdout io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schedgw: listening on http://%s (%s)\n", ln.Addr(), gw)
	hs := &http.Server{Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "schedgw: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := gw.Drain(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "schedgw: drained")
	return nil
}

// selfCheck boots a 3-backend local cluster plus a single-instance
// reference, fronts the cluster with a gateway on an ephemeral port, and
// machine-checks the subsystem's invariants end to end over real HTTP:
// aggregated health, pinned Table-1 cluster-vs-singleton byte identity with
// stable warm-cache routing, batch split/merge with an isolated per-item
// 422, kill → failover → revive → rejoin with identical bytes throughout,
// the gateway trace stages, statusz aggregation, one cluster chaos
// scenario, and a graceful drain. Only [ok  ] lines are printed.
func selfCheck(traceOut, accessLog string, stdout io.Writer) error {
	// Reference single instance: the source of every golden byte.
	ref := serve.NewServer(serve.Options{})
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	refHS := &http.Server{Handler: ref.Handler()}
	go refHS.Serve(refLn)
	refBase := "http://" + refLn.Addr().String()

	local, err := cluster.StartLocal(3, serve.Options{})
	if err != nil {
		return err
	}
	defer local.Close()

	reg := obs.NewMetrics()
	spanCol := &obs.Collector{}
	sinks := obs.Multi{obs.NewSpanMetricsObserver(reg, "gateway"), spanCol}
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		sinks = append(sinks, obs.NewJSONL(f))
	}
	var observers obs.Multi
	if accessLog != "" {
		f, err := os.OpenFile(accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		observers = append(observers, obs.NewJSONL(f))
	}

	gw, err := cluster.NewGateway(cluster.Options{
		Backends: local.Backends(),
		Client: client.Options{
			// No retries and no breaker: a dead backend must cost exactly one
			// failed attempt before deterministic failover, and a revived one
			// must rejoin on the next request.
			MaxRetries:       -1,
			BreakerThreshold: -1,
			Timeout:          5 * time.Second,
			Seed:             1,
			HTTPClient:       &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		},
		Metrics:  reg,
		Observer: observers,
		Tracer:   obs.NewTracer(sinks),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: gw.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "schedgw: selfcheck against %s (3 local backends)\n", base)

	// Leg 1: aggregated health — every backend probed, cluster ok.
	var health struct {
		Status   string            `json:"status"`
		Backends map[string]string `json:"backends"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if health.Status != "ok" || len(health.Backends) != 3 {
		return fmt.Errorf("healthz: %+v, want ok with 3 backends", health)
	}
	fmt.Fprintln(stdout, "[ok  ] healthz aggregates all 3 backends")

	// Leg 2: pinned Table-1 byte identity + warm-cache routing stability.
	reqBody, err := json.Marshal(serve.Request{
		ETC:       experiments.MinMinExampleETC().Values(),
		Heuristic: "min-min",
		Ties:      "det",
		Seed:      1,
	})
	if err != nil {
		return err
	}
	golden, _, err := post(refBase+"/v1/iterate", reqBody)
	if err != nil {
		return fmt.Errorf("singleton reference: %w", err)
	}
	first, firstCache, err := post(base+"/v1/iterate", reqBody)
	if err != nil {
		return err
	}
	if !bytes.Equal(first, golden) {
		return fmt.Errorf("cluster response differs from the single instance:\n got %s\nwant %s", first, golden)
	}
	if firstCache != "miss" {
		return fmt.Errorf("first cluster request X-Schedd-Cache %q, want miss", firstCache)
	}
	second, secondCache, err := post(base+"/v1/iterate", reqBody)
	if err != nil {
		return err
	}
	if secondCache != "hit" || !bytes.Equal(second, golden) {
		return fmt.Errorf("second cluster request cache %q (want hit: same key, same backend, warm cache), bytes equal %v", secondCache, bytes.Equal(second, golden))
	}
	fmt.Fprintln(stdout, "[ok  ] pinned Table-1 trace through the cluster is byte-identical to a single instance; repeat routes to the warm cache")

	// Leg 3: batch split/merge across backends with an isolated 422.
	if err := batchLeg(base, refBase, stdout); err != nil {
		return err
	}

	// Leg 4: kill → failover → revive → rejoin.
	key, ok := serve.CanonicalKey("/v1/iterate", reqBody)
	if !ok {
		return fmt.Errorf("pinned body has no canonical key")
	}
	rank := gw.Router().Rank(key)
	var ownerIdx int
	fmt.Sscanf(rank[0], "backend-%d", &ownerIdx)
	local.Kill(ownerIdx)
	failed, failedCache, err := post(base+"/v1/iterate", reqBody)
	if err != nil {
		return fmt.Errorf("failover request: %w", err)
	}
	if !bytes.Equal(failed, golden) {
		return fmt.Errorf("failed-over response differs from the single instance")
	}
	if failedCache != "miss" {
		return fmt.Errorf("failover X-Schedd-Cache %q, want miss (the failover backend computes cold)", failedCache)
	}
	if err := local.Revive(ownerIdx); err != nil {
		return err
	}
	revived, revivedCache, err := post(base+"/v1/iterate", reqBody)
	if err != nil {
		return fmt.Errorf("post-revive request: %w", err)
	}
	if !bytes.Equal(revived, golden) || revivedCache != "hit" {
		return fmt.Errorf("post-revive cache %q bytes-equal %v, want hit on the rejoined owner's warm cache", revivedCache, bytes.Equal(revived, golden))
	}
	fmt.Fprintf(stdout, "[ok  ] kill %s: failover computes identical bytes; revive: key returns to the owner's warm cache\n", rank[0])

	// Leg 5: the gateway trace stages.
	if err := traceLeg(spanCol, stdout); err != nil {
		return err
	}

	// Leg 6: statusz aggregation — breaker states, routed counts,
	// conservation.
	var st struct {
		Status        string `json:"status"`
		RequestsTotal int64  `json:"requests_total"`
		Responses2xx  int64  `json:"responses_2xx"`
		Responses4xx  int64  `json:"responses_4xx"`
		Responses5xx  int64  `json:"responses_5xx"`
		Failovers     int64  `json:"failovers"`
		Backends      []struct {
			Name    string `json:"name"`
			Health  string `json:"health"`
			Breaker string `json:"breaker"`
			Routed  int64  `json:"routed"`
		} `json:"backends"`
	}
	if err := getJSON(base+"/statusz", &st); err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	if len(st.Backends) != 3 {
		return fmt.Errorf("statusz: %d backends, want 3", len(st.Backends))
	}
	var routed int64
	for _, b := range st.Backends {
		if b.Breaker != "closed" {
			return fmt.Errorf("statusz: backend %s breaker %q, want closed", b.Name, b.Breaker)
		}
		if b.Health != "ok" {
			return fmt.Errorf("statusz: backend %s health %q, want ok", b.Name, b.Health)
		}
		routed += b.Routed
	}
	if st.RequestsTotal == 0 || st.Responses2xx+st.Responses4xx+st.Responses5xx != st.RequestsTotal {
		return fmt.Errorf("statusz: outcome conservation failed: %d requests, %d+%d+%d outcomes",
			st.RequestsTotal, st.Responses2xx, st.Responses4xx, st.Responses5xx)
	}
	if st.Failovers < 1 {
		return fmt.Errorf("statusz: failovers %d, want >= 1 (the kill leg failed over)", st.Failovers)
	}
	fmt.Fprintf(stdout, "[ok  ] statusz aggregates 3 closed breakers, %d routed posts, conserved outcomes, %d failover(s)\n", routed, st.Failovers)

	// Leg 7: one cluster chaos scenario, every invariant machine-checked.
	sc, err := chaos.ClusterByName("backend-rejoin")
	if err != nil {
		return err
	}
	rep, err := chaos.RunCluster(sc)
	if err != nil {
		return fmt.Errorf("cluster chaos leg: %w", err)
	}
	if !rep.Pass {
		for _, inv := range rep.Invariants {
			if !inv.OK {
				return fmt.Errorf("cluster chaos leg: invariant %s violated: %s", inv.Name, inv.Detail)
			}
		}
		return fmt.Errorf("cluster chaos leg: scenario %s failed", rep.Scenario)
	}
	fmt.Fprintf(stdout, "[ok  ] cluster chaos scenario %s: %d invariants hold\n", rep.Scenario, len(rep.Invariants))

	// Leg 8: drain.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := gw.Drain(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := refHS.Shutdown(sctx); err != nil {
		return fmt.Errorf("reference shutdown: %w", err)
	}
	if err := ref.Drain(sctx); err != nil {
		return fmt.Errorf("reference drain: %w", err)
	}
	fmt.Fprintln(stdout, "[ok  ] drained")
	return nil
}

// batchLeg drives a mixed batch through the gateway: items owned by
// different backends, one invalid item. Per-item results must be
// byte-identical to the single instance's — the 422 isolated in place.
func batchLeg(base, refBase string, stdout io.Writer) error {
	req := serve.Request{
		ETC:       experiments.MinMinExampleETC().Values(),
		Heuristic: "min-min",
		Ties:      "det",
		Seed:      1,
	}
	bad := req
	bad.Heuristic = "nope"
	items := []serve.BatchItem{
		{Endpoint: "iterate", Request: req},
		{Endpoint: "iterate", Request: bad},
	}
	// Vary the seed so items spread across backends: distinct keys rank
	// independently under rendezvous hashing.
	for seed := uint64(2); seed <= 5; seed++ {
		rq := req
		rq.Seed = seed
		items = append(items, serve.BatchItem{Endpoint: "iterate", Request: rq})
	}
	body, err := json.Marshal(serve.BatchRequest{Items: items})
	if err != nil {
		return err
	}
	goldenEnv, _, err := post(refBase+"/v1/batch", body)
	if err != nil {
		return fmt.Errorf("batch leg: singleton reference: %w", err)
	}
	env, _, err := post(base+"/v1/batch", body)
	if err != nil {
		return fmt.Errorf("batch leg: %w", err)
	}
	var want, got serve.BatchResponse
	if err := json.Unmarshal(goldenEnv, &want); err != nil {
		return fmt.Errorf("batch leg: decoding singleton envelope: %w", err)
	}
	if err := json.Unmarshal(env, &got); err != nil {
		return fmt.Errorf("batch leg: decoding cluster envelope: %w", err)
	}
	if len(got.Results) != len(want.Results) {
		return fmt.Errorf("batch leg: %d results, singleton %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i].Status != want.Results[i].Status || !bytes.Equal(got.Results[i].Body, want.Results[i].Body) {
			return fmt.Errorf("batch leg: item %d differs from the single instance:\n got %d %s\nwant %d %s",
				i, got.Results[i].Status, got.Results[i].Body, want.Results[i].Status, want.Results[i].Body)
		}
	}
	if got.Results[1].Status != http.StatusUnprocessableEntity {
		return fmt.Errorf("batch leg: item 1 status %d, want an isolated 422", got.Results[1].Status)
	}
	fmt.Fprintf(stdout, "[ok  ] /v1/batch splits %d items across backends and merges byte-identically, 422 isolated in place\n", len(items))
	return nil
}

// traceLeg verifies the gateway's span trees: every collected trace is
// well-formed, roots are "gateway", and the documented gateway stages
// (route, backend_wait, write; batch adds batch_merge) all appear.
func traceLeg(spanCol *obs.Collector, stdout io.Writer) error {
	// Spans are emitted as the handler epilogue runs, which can trail the
	// response bytes by a scheduler beat; the spans themselves are
	// deterministic, only their arrival needs a grace period. Five posts
	// have gone through the gateway by this leg.
	var all []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		all = all[:0]
		for _, e := range spanCol.Events() {
			if sp, ok := e.(obs.Span); ok {
				all = append(all, sp)
			}
		}
		if roots := countRoots(all); roots >= 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sum := obs.SummarizeSpans(all)
	if !sum.WellFormed() || sum.Roots == 0 {
		return fmt.Errorf("trace leg: %d roots, malformed: %v", sum.Roots, sum.Malformed)
	}
	stages := map[string]bool{}
	for _, sp := range all {
		if sp.ParentID == 0 {
			if sp.Name != "gateway" {
				return fmt.Errorf("trace leg: root span named %q, want gateway", sp.Name)
			}
			continue
		}
		stages[sp.Name] = true
	}
	for _, name := range []string{"route", "backend_wait", "batch_merge", "write"} {
		if !stages[name] {
			var have []string
			for s := range stages {
				have = append(have, s)
			}
			sort.Strings(have)
			return fmt.Errorf("trace leg: stage %s missing (have %v)", name, have)
		}
	}
	fmt.Fprintf(stdout, "[ok  ] %d gateway traces well-formed with route/backend_wait/batch_merge/write stages\n", sum.Roots)
	return nil
}

func countRoots(spans []obs.Span) int {
	n := 0
	for _, sp := range spans {
		if sp.ParentID == 0 {
			n++
		}
	}
	return n
}

func post(url string, body []byte) (respBody []byte, cacheHeader string, err error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, respBody)
	}
	return respBody, resp.Header.Get("X-Schedd-Cache"), nil
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, into)
}
