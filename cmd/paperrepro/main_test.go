package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

func TestSingleExperiment(t *testing.T) {
	out, err := runCLI(t, "-exp", "E5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E5", "PASS", "Table 12", "[ok  ]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Fatalf("E5 has failing checks:\n%s", out)
	}
}

func TestSingleExperimentIsVerbose(t *testing.T) {
	out, err := runCLI(t, "-exp", "E4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Reconstructed ETC matrix") {
		t.Fatal("-exp should imply verbose body output")
	}
}

func TestAllExampleExperimentsPass(t *testing.T) {
	// E1-E6 are fast; run each through the CLI.
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6"} {
		out, err := runCLI(t, "-exp", id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "PASS") {
			t.Errorf("%s did not pass:\n%s", id, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := runCLI(t, "-exp", "E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := runCLI(t, "-nope"); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestJSONArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if _, err := runCLI(t, "-exp", "E5", "-json", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]interface{}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("archive is not valid JSON: %v", err)
	}
	if len(records) != 1 || records[0]["id"] != "E5" || records[0]["passed"] != true {
		t.Fatalf("records = %+v", records)
	}
}
