// Command paperrepro regenerates every table and figure of the paper and
// verifies the reproduced quantities against the paper's reported values.
//
// Usage:
//
//	paperrepro            # run all experiments, print summaries and checks
//	paperrepro -exp E4    # run one experiment with its full rendered output
//	paperrepro -v         # run all experiments with full output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "run a single experiment by ID (E1..E12)")
	verbose := fs.Bool("v", false, "print full rendered tables and figures")
	jsonPath := fs.String("json", "", "also archive results as JSON records at this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var list []experiments.Experiment
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		list = []experiments.Experiment{e}
		*verbose = true
	} else {
		list = experiments.All()
	}

	failed := 0
	var records []report.ExperimentRecord
	for _, e := range list {
		rep, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		records = append(records, report.FromExperiment(rep, e.Artifacts, *verbose))
		fmt.Fprintln(stdout, rep.Summary())
		fmt.Fprintf(stdout, "     reproduces: %s\n", e.Artifacts)
		if *verbose {
			fmt.Fprintln(stdout)
			fmt.Fprintln(stdout, rep.Body)
		}
		fmt.Fprint(stdout, rep.ChecksString())
		fmt.Fprintln(stdout)
		failed += len(rep.Failed())
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f, records); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d checks failed", failed)
	}
	return nil
}
